//! Dense row-major 2-D `f32` tensor.

use crate::rng::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major, two-dimensional `f32` tensor.
///
/// All shapes in the SNIP stack are two-dimensional once batch and sequence
/// dimensions are flattened ("tokens × features"), so `Tensor` deliberately
/// does not support higher ranks — attention code indexes heads explicitly.
///
/// # Example
///
/// ```
/// use snip_tensor::Tensor;
/// let t = Tensor::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(t[(1, 2)], 5.0);
/// assert_eq!(t.shape(), (2, 3));
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Tensor { rows, cols, data }
    }

    /// Creates a tensor by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Tensor { rows, cols, data }
    }

    /// Creates a tensor with i.i.d. Gaussian entries of the given std-dev.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut Rng) -> Self {
        let mut t = Tensor::zeros(rows, cols);
        rng.fill_gaussian(&mut t.data, std);
        t
    }

    /// Creates a tensor with i.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let mut t = Tensor::zeros(rows, cols);
        rng.fill_uniform(&mut t.data, lo, hi);
        t
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a new tensor with the same shape whose entries are `f(x)`.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise sum, returning a new tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference, returning a new tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product, returning a new tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise combination of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other` (AXPY).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every entry by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Returns the transposed tensor.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Frobenius norm (ℓ2 norm of the flattened tensor).
    ///
    /// Accumulates in `f64` so large tensors do not lose precision.
    pub fn frobenius_norm(&self) -> f64 {
        self.squared_sum().sqrt()
    }

    /// Sum of squared entries, accumulated in `f64`.
    pub fn squared_sum(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum()
    }

    /// Sum of entries, accumulated in `f64`.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Mean of entries.
    ///
    /// Returns `0.0` for an empty tensor.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum absolute entry (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Whether every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Frobenius norm of `self - other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn distance(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Fills the tensor with zeros.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }
}

impl Index<(usize, usize)> for Tensor {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Tensor {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, .. ; |.|_F = {:.4}]",
                self.data[0],
                self.data[1],
                self.frobenius_norm()
            )?;
        }
        Ok(())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::from_fn(3, 4, |r, c| (r * 10 + c) as f32);
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t[(2, 3)], 23.0);
        assert_eq!(t.row(1), &[10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_validates_shape() {
        let _ = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::full(2, 2, 2.0);
        assert_eq!(a.add(&b).as_slice(), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sub(&b).as_slice(), &[-1.0, 0.0, 1.0, 2.0]);
        assert_eq!(a.mul(&b).as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn elementwise_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 2);
        let b = Tensor::zeros(2, 3);
        let _ = a.add(&b);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::full(1, 3, 1.0);
        let b = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(t.transposed().transposed(), t);
        assert_eq!(t.transposed()[(4, 2)], t[(2, 4)]);
    }

    #[test]
    fn norms() {
        let t = Tensor::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((t.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(t.max_abs(), 4.0);
        let u = Tensor::from_vec(1, 2, vec![0.0, 0.0]);
        assert!((t.distance(&u) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn statistics() {
        let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert!(t.all_finite());
        let mut bad = t.clone();
        bad[(0, 0)] = f32::NAN;
        assert!(!bad.all_finite());
    }

    #[test]
    fn randn_deterministic_given_seed() {
        let mut r1 = crate::rng::Rng::seed_from(10);
        let mut r2 = crate::rng::Rng::seed_from(10);
        let a = Tensor::randn(4, 4, 1.0, &mut r1);
        let b = Tensor::randn(4, 4, 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn randn_std_approximately_matches() {
        let mut rng = crate::rng::Rng::seed_from(3);
        let t = Tensor::randn(100, 100, 0.5, &mut rng);
        let std = (t.squared_sum() / t.len() as f64).sqrt();
        assert!((std - 0.5).abs() < 0.02, "std = {std}");
    }

    #[test]
    fn serde_round_trip() {
        let t = Tensor::from_fn(2, 3, |r, c| r as f32 - c as f32);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", Tensor::zeros(0, 0)).is_empty());
        assert!(!format!("{:?}", Tensor::zeros(64, 64)).is_empty());
    }
}
