//! Bit-packed subbyte tensors and the quantized GEMM kernels that consume
//! them.
//!
//! The fake-quantization path emulates low-precision GEMMs by rounding
//! operands and immediately re-materializing them as dense `f32` — it gets
//! the *numerics* right but none of the *systems* benefit. [`QTensor`] is
//! the real representation: each element is a small integer **code** (a
//! nibble for 4-bit formats, a byte for 8-bit), decoded through a per-format
//! lookup table and a per-group scale:
//!
//! ```text
//!              ┌ data: packed codes, row-major ───────────────┐
//!   4-bit      │ byte 0: [c1|c0]  byte 1: [c3|c2]  …          │  0.5 B/elem
//!   8-bit      │ byte 0:  c0      byte 1:  c1      …          │  1   B/elem
//!              └──────────────────────────────────────────────┘
//!   lut:    code → representable value        (16 or 256 × f32)
//!   scales: group → decode multiplier         (one f32 per scale group)
//!
//!   value(r, c) = lut[code(r, c)] * scales[group(r, c)]
//! ```
//!
//! The GEMM kernels ([`qgemm`], [`qgemm_nt`], [`qgemm_tn`]) decode rows on
//! the fly into small per-thread scratch buffers inside the same blocked,
//! multi-threaded loop structure as the dense kernels in
//! [`crate::matmul`] — the per-element accumulation order is *identical*,
//! so a quantized GEMM over packed operands returns bit-for-bit the same
//! result as the dense GEMM over the dequantized operands. Mixed
//! packed×dense products are supported through [`QOperandRef`], which
//! borrows dense rows directly (no copy) and decodes packed rows into the
//! caller's scratch.
//!
//! This crate stays format-agnostic: the lookup table and scales are built
//! by `snip-quant`, which knows about FP4/FP8/INT codecs. [`GroupLayout`]
//! mirrors the scaling granularities at the storage level.

use crate::matmul::{for_each_row_chunk, thread_count};
use crate::Tensor;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Storage width of one code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodeWidth {
    /// 4-bit codes, two per byte (FP4 E2M1, INT4, narrower integer grids).
    U4,
    /// 8-bit codes, one per byte (FP8 variants, INT8).
    U8,
}

impl CodeWidth {
    /// Number of entries a decode table for this width must have.
    pub fn lut_len(self) -> usize {
        match self {
            CodeWidth::U4 => 16,
            CodeWidth::U8 => 256,
        }
    }

    /// Storage bits per element.
    pub fn bits(self) -> u32 {
        match self {
            CodeWidth::U4 => 4,
            CodeWidth::U8 => 8,
        }
    }

    /// Packed bytes needed for one row of `cols` codes (4-bit rows are
    /// padded to whole bytes so rows stay independently addressable).
    pub fn row_bytes(self, cols: usize) -> usize {
        match self {
            CodeWidth::U4 => cols.div_ceil(2),
            CodeWidth::U8 => cols,
        }
    }
}

/// How decode scales map onto tensor regions — the storage-level mirror of
/// `snip-quant`'s scaling granularities.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupLayout {
    /// One scale for the whole tensor.
    Tensorwise,
    /// One scale per row.
    Rowwise,
    /// One scale per column.
    Columnwise,
    /// One scale per `nb × nb` block.
    Block {
        /// Block side length.
        nb: usize,
    },
    /// One scale per `1 × nb` tile within each row.
    Tile {
        /// Tile length along the row.
        nb: usize,
    },
}

impl GroupLayout {
    /// Number of scale groups for a `rows × cols` tensor (0 when empty).
    pub fn group_count(&self, rows: usize, cols: usize) -> usize {
        if rows == 0 || cols == 0 {
            return 0;
        }
        match *self {
            GroupLayout::Tensorwise => 1,
            GroupLayout::Rowwise => rows,
            GroupLayout::Columnwise => cols,
            GroupLayout::Block { nb } => rows.div_ceil(nb) * cols.div_ceil(nb),
            GroupLayout::Tile { nb } => rows * cols.div_ceil(nb),
        }
    }

    /// Scale groups per row-band of columns (the stride between consecutive
    /// row groups in the scale vector).
    fn col_groups(&self, cols: usize) -> usize {
        match *self {
            GroupLayout::Tensorwise | GroupLayout::Rowwise => 1,
            GroupLayout::Columnwise => cols,
            GroupLayout::Block { nb } | GroupLayout::Tile { nb } => cols.div_ceil(nb),
        }
    }

    /// Index into the scale vector for element `(r, c)`. Group order matches
    /// `snip-quant`'s `Granularity::for_each_group` iteration order.
    #[inline]
    fn group_index(&self, r: usize, c: usize, col_groups: usize) -> usize {
        match *self {
            GroupLayout::Tensorwise => 0,
            GroupLayout::Rowwise => r,
            GroupLayout::Columnwise => c,
            GroupLayout::Block { nb } => (r / nb) * col_groups + c / nb,
            GroupLayout::Tile { nb } => r * col_groups + c / nb,
        }
    }

    /// Length of the run of columns starting at `c` that shares one scale.
    #[inline]
    fn run_len(&self, c: usize, cols: usize) -> usize {
        match *self {
            GroupLayout::Tensorwise | GroupLayout::Rowwise => cols - c,
            GroupLayout::Columnwise => 1,
            GroupLayout::Block { nb } | GroupLayout::Tile { nb } => (nb - c % nb).min(cols - c),
        }
    }
}

/// A bit-packed low-precision tensor: codes + decode table + group scales.
///
/// Invariants: `lut.len() == width.lut_len()`, `scales.len() ==
/// layout.group_count(rows, cols)`, and every stored code indexes a valid
/// table entry. Construction goes through [`QTensor::new_zeroed`] +
/// [`QTensor::set_code`] (all-zero codes are valid: code 0 decodes to 0).
///
/// Serialization stores the codes, scales and decode table verbatim, so a
/// deserialized tensor decodes bit-for-bit identically (packed optimizer
/// state survives checkpoint round trips exactly); the decode table loses
/// its cross-tensor interning until the owning format re-quantizes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QTensor {
    rows: usize,
    cols: usize,
    width: CodeWidth,
    /// Packed codes, row-major, rows padded to whole bytes.
    data: Vec<u8>,
    /// Code → representable value. Shared per format (a decode table is
    /// format metadata, not per-tensor data), so cloning a `QTensor` or
    /// quantizing many tensors of one format stores the table once.
    lut: Arc<[f32]>,
    layout: GroupLayout,
    /// Cached `layout.col_groups(cols)`.
    col_groups: usize,
    /// Group → decode multiplier.
    scales: Vec<f32>,
}

impl QTensor {
    /// Creates a packed tensor with all codes zero.
    ///
    /// # Panics
    ///
    /// Panics if the lookup table or scale vector lengths do not match the
    /// width/layout.
    pub fn new_zeroed(
        rows: usize,
        cols: usize,
        width: CodeWidth,
        lut: impl Into<Arc<[f32]>>,
        layout: GroupLayout,
        scales: Vec<f32>,
    ) -> Self {
        let lut = lut.into();
        assert_eq!(
            lut.len(),
            width.lut_len(),
            "decode table must have {} entries",
            width.lut_len()
        );
        assert_eq!(
            scales.len(),
            layout.group_count(rows, cols),
            "scale count must match {layout:?} on {rows}x{cols}"
        );
        QTensor {
            rows,
            cols,
            width,
            data: vec![0u8; rows * width.row_bytes(cols)],
            lut,
            layout,
            col_groups: layout.col_groups(cols),
            scales,
        }
    }

    /// Creates a packed tensor from an already-filled code buffer (the bulk
    /// construction path quantizers use — no per-element `set_code` calls).
    ///
    /// # Panics
    ///
    /// Panics if `data`, `lut` or `scales` lengths do not match the
    /// shape/width/layout.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        width: CodeWidth,
        lut: impl Into<Arc<[f32]>>,
        layout: GroupLayout,
        scales: Vec<f32>,
        data: Vec<u8>,
    ) -> Self {
        let lut = lut.into();
        assert_eq!(
            data.len(),
            rows * width.row_bytes(cols),
            "code buffer length must match {rows}x{cols} at {width:?}"
        );
        assert_eq!(
            lut.len(),
            width.lut_len(),
            "decode table must have {} entries",
            width.lut_len()
        );
        assert_eq!(
            scales.len(),
            layout.group_count(rows, cols),
            "scale count must match {layout:?} on {rows}x{cols}"
        );
        QTensor {
            rows,
            cols,
            width,
            data,
            lut,
            layout,
            col_groups: layout.col_groups(cols),
            scales,
        }
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The code storage width.
    pub fn width(&self) -> CodeWidth {
        self.width
    }

    /// The scale-group layout.
    pub fn layout(&self) -> GroupLayout {
        self.layout
    }

    /// The decode table.
    pub fn lut(&self) -> &[f32] {
        &self.lut
    }

    /// The per-group decode multipliers.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The packed code bytes.
    pub fn packed_data(&self) -> &[u8] {
        &self.data
    }

    /// Stores a code at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or the code does not fit the width.
    #[inline]
    pub fn set_code(&mut self, r: usize, c: usize, code: u8) {
        assert!(r < self.rows && c < self.cols, "({r}, {c}) out of bounds");
        match self.width {
            CodeWidth::U4 => {
                assert!(code < 16, "code {code} does not fit 4 bits");
                let byte = &mut self.data[r * self.cols.div_ceil(2) + c / 2];
                if c.is_multiple_of(2) {
                    *byte = (*byte & 0xF0) | code;
                } else {
                    *byte = (*byte & 0x0F) | (code << 4);
                }
            }
            CodeWidth::U8 => self.data[r * self.cols + c] = code,
        }
    }

    /// Reads the code at `(r, c)`.
    #[inline]
    pub fn code(&self, r: usize, c: usize) -> u8 {
        debug_assert!(r < self.rows && c < self.cols);
        match self.width {
            CodeWidth::U4 => {
                let byte = self.data[r * self.cols.div_ceil(2) + c / 2];
                if c.is_multiple_of(2) {
                    byte & 0x0F
                } else {
                    byte >> 4
                }
            }
            CodeWidth::U8 => self.data[r * self.cols + c],
        }
    }

    /// Decodes the element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        let scale = self.scales[self.layout.group_index(r, c, self.col_groups)];
        self.lut[self.code(r, c) as usize] * scale
    }

    /// Decodes row `r` into `out` (length `cols`). This is the hot decode
    /// path of the GEMM kernels; scales are applied per constant-scale run
    /// rather than per element.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != cols` or `r` is out of bounds.
    pub fn decode_row_into(&self, r: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols, "decode buffer length mismatch");
        assert!(r < self.rows, "row {r} out of bounds");
        let mut c = 0;
        while c < self.cols {
            let run = self.layout.run_len(c, self.cols);
            let scale = self.scales[self.layout.group_index(r, c, self.col_groups)];
            match self.width {
                CodeWidth::U8 => {
                    let base = r * self.cols;
                    for (o, &code) in out[c..c + run]
                        .iter_mut()
                        .zip(&self.data[base + c..base + c + run])
                    {
                        *o = self.lut[code as usize] * scale;
                    }
                }
                CodeWidth::U4 => {
                    let stride = self.cols.div_ceil(2);
                    for (i, o) in out[c..c + run].iter_mut().enumerate() {
                        let cc = c + i;
                        let byte = self.data[r * stride + cc / 2];
                        let code = if cc % 2 == 0 { byte & 0x0F } else { byte >> 4 };
                        *o = self.lut[code as usize] * scale;
                    }
                }
            }
            c += run;
        }
    }

    /// Decodes the whole tensor into a dense `f32` tensor. Bit-for-bit
    /// identical to what the packing quantizer's fake-quantization path
    /// would have produced.
    pub fn dequantize(&self) -> Tensor {
        let mut t = Tensor::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            self.decode_row_into(r, t.row_mut(r));
        }
        t
    }

    /// Bytes of packed code storage (what HBM would hold for the elements).
    pub fn packed_data_bytes(&self) -> usize {
        self.data.len()
    }

    /// Bytes of scale storage.
    pub fn scale_bytes(&self) -> usize {
        self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Bytes a collective must move for this tensor: codes + scales (the
    /// decode table is format metadata, shared per format, not per tensor).
    pub fn wire_bytes(&self) -> u64 {
        (self.packed_data_bytes() + self.scale_bytes()) as u64
    }

    /// Total resident bytes of this value: codes, scales and the container
    /// itself. The decode table is shared per format (an `Arc` owned by the
    /// format's codebook), so it amortizes to zero across tensors and is
    /// not charged here.
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.packed_data_bytes() + self.scale_bytes()
    }
}

/// One GEMM operand: either a dense `f32` tensor (borrowed rows, no copy)
/// or a packed tensor (rows decoded into caller scratch on demand).
#[derive(Clone, Copy, Debug)]
pub enum QOperandRef<'a> {
    /// Dense operand.
    Dense(&'a Tensor),
    /// Packed operand.
    Packed(&'a QTensor),
}

impl<'a> From<&'a Tensor> for QOperandRef<'a> {
    fn from(t: &'a Tensor) -> Self {
        QOperandRef::Dense(t)
    }
}

impl<'a> From<&'a QTensor> for QOperandRef<'a> {
    fn from(t: &'a QTensor) -> Self {
        QOperandRef::Packed(t)
    }
}

impl QOperandRef<'_> {
    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            QOperandRef::Dense(t) => t.shape(),
            QOperandRef::Packed(t) => t.shape(),
        }
    }

    /// The element at `(r, c)` (decoded if packed).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        match self {
            QOperandRef::Dense(t) => t[(r, c)],
            QOperandRef::Packed(t) => t.get(r, c),
        }
    }

    /// Row `r` as a slice: a direct borrow for dense operands, a decode
    /// into `scratch` for packed ones. `scratch.len()` must equal `cols`.
    #[inline]
    fn row<'s>(&'s self, r: usize, scratch: &'s mut [f32]) -> &'s [f32] {
        match self {
            QOperandRef::Dense(t) => t.row(r),
            QOperandRef::Packed(t) => {
                t.decode_row_into(r, scratch);
                scratch
            }
        }
    }

    /// Copies row `r` into `out` (decoding if packed).
    fn row_into(&self, r: usize, out: &mut [f32]) {
        match self {
            QOperandRef::Dense(t) => out.copy_from_slice(t.row(r)),
            QOperandRef::Packed(t) => t.decode_row_into(r, out),
        }
    }
}

/// B-rows decoded per panel in [`qgemm_nt`]; amortizes A-row decoding
/// across the panel while bounding scratch to `PANEL × K` floats.
const NT_PANEL: usize = 32;

/// `C = A · B` over packed/dense operands (`A`: `M×K`, `B`: `K×N`).
///
/// Bit-for-bit identical to `matmul(&a.dequantize(), &b.dequantize())`:
/// the kernel visits `k` in the same ascending order per output element and
/// accumulates in `f32` exactly like the dense kernel.
///
/// # Panics
///
/// Panics if inner dimensions differ.
pub fn qgemm(a: QOperandRef<'_>, b: QOperandRef<'_>) -> Tensor {
    // Two dense operands need no decode machinery; the dense kernel is
    // bit-identical (same loops) and skips the row-copy scratch.
    if let (QOperandRef::Dense(da), QOperandRef::Dense(db)) = (&a, &b) {
        return crate::matmul::matmul(da, db);
    }
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "qgemm: inner dims differ ({k} vs {kb})");
    let mut c = Tensor::zeros(m, n);
    let threads = thread_count(m * n * k);
    let cdata = c.as_mut_slice();
    for_each_row_chunk(m, threads, cdata, n, |start, end, chunk| {
        let mut b_buf = vec![0.0f32; n];
        for kk in 0..k {
            let brow = b.row(kk, &mut b_buf);
            for i in start..end {
                let aik = a.get(i, kk);
                if aik == 0.0 {
                    continue;
                }
                let crow = &mut chunk[(i - start) * n..(i - start + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += aik * bv;
                }
            }
        }
    });
    c
}

/// `C = A · Bᵀ` over packed/dense operands (`A`: `M×K`, `B`: `N×K`) — the
/// forward GEMM of a linear layer with `out × in` weights.
///
/// Decodes `B` in panels of `NT_PANEL` rows per thread; each output
/// element is a single sequential dot product over `k`, so results are
/// bit-for-bit identical to `matmul_nt` on the dequantized operands.
///
/// # Panics
///
/// Panics if inner dimensions differ.
pub fn qgemm_nt(a: QOperandRef<'_>, b: QOperandRef<'_>) -> Tensor {
    if let (QOperandRef::Dense(da), QOperandRef::Dense(db)) = (&a, &b) {
        return crate::matmul::matmul_nt(da, db);
    }
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(k, kb, "qgemm_nt: inner dims differ ({k} vs {kb})");
    let mut c = Tensor::zeros(m, n);
    let threads = thread_count(m * n * k);
    let cdata = c.as_mut_slice();
    for_each_row_chunk(m, threads, cdata, n, |start, end, chunk| {
        let mut a_buf = vec![0.0f32; k];
        let mut panel = vec![0.0f32; NT_PANEL.min(n.max(1)) * k];
        let mut j0 = 0;
        while j0 < n {
            let jend = (j0 + NT_PANEL).min(n);
            for j in j0..jend {
                b.row_into(j, &mut panel[(j - j0) * k..(j - j0 + 1) * k]);
            }
            for i in start..end {
                let arow = a.row(i, &mut a_buf);
                let crow = &mut chunk[(i - start) * n..(i - start + 1) * n];
                for j in j0..jend {
                    let brow = &panel[(j - j0) * k..(j - j0 + 1) * k];
                    let mut acc = 0.0f32;
                    for (x, y) in arow.iter().zip(brow) {
                        acc += x * y;
                    }
                    crow[j] = acc;
                }
            }
            j0 = jend;
        }
    });
    c
}

/// `C = Aᵀ · B` over packed/dense operands (`A`: `K×M`, `B`: `K×N`) — the
/// weight-gradient GEMM `dW = dYᵀ · X`.
///
/// Decodes one `A` row and one `B` row per `k` step; per-element
/// accumulation order matches `matmul_tn` exactly.
///
/// # Panics
///
/// Panics if outer dimensions differ.
pub fn qgemm_tn(a: QOperandRef<'_>, b: QOperandRef<'_>) -> Tensor {
    if let (QOperandRef::Dense(da), QOperandRef::Dense(db)) = (&a, &b) {
        return crate::matmul::matmul_tn(da, db);
    }
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "qgemm_tn: outer dims differ ({k} vs {kb})");
    let mut c = Tensor::zeros(m, n);
    let threads = thread_count(m * n * k);
    let cdata = c.as_mut_slice();
    for_each_row_chunk(m, threads, cdata, n, |start, end, chunk| {
        let mut a_buf = vec![0.0f32; m];
        let mut b_buf = vec![0.0f32; n];
        for kk in 0..k {
            let arow = a.row(kk, &mut a_buf);
            let brow = b.row(kk, &mut b_buf);
            for i in start..end {
                let aik = arow[i];
                if aik == 0.0 {
                    continue;
                }
                let crow = &mut chunk[(i - start) * n..(i - start + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += aik * bv;
                }
            }
        }
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::{matmul, matmul_nt, matmul_tn};
    use crate::rng::Rng;

    /// A little 4-bit sign-magnitude codebook over {0, 0.5, 1, 1.5, …}:
    /// enough structure to exercise packing without snip-quant.
    fn test_lut_u4() -> Vec<f32> {
        let mut lut = vec![0.0f32; 16];
        for i in 0..8 {
            lut[i] = i as f32 * 0.5;
            lut[8 + i] = -(i as f32 * 0.5);
        }
        lut
    }

    fn random_qtensor(rows: usize, cols: usize, layout: GroupLayout, seed: u64) -> QTensor {
        let mut rng = Rng::seed_from(seed);
        let groups = layout.group_count(rows, cols);
        let scales: Vec<f32> = (0..groups).map(|_| 0.25 + rng.next_f32()).collect();
        let mut q = QTensor::new_zeroed(rows, cols, CodeWidth::U4, test_lut_u4(), layout, scales);
        for r in 0..rows {
            for c in 0..cols {
                q.set_code(r, c, (rng.next_u64() % 16) as u8);
            }
        }
        q
    }

    #[test]
    fn codes_round_trip_u4_and_u8() {
        for width in [CodeWidth::U4, CodeWidth::U8] {
            let lut = vec![0.0f32; width.lut_len()];
            let mut q = QTensor::new_zeroed(3, 5, width, lut, GroupLayout::Tensorwise, vec![1.0]);
            let limit = match width {
                CodeWidth::U4 => 16u8,
                CodeWidth::U8 => 255,
            };
            for r in 0..3 {
                for c in 0..5 {
                    q.set_code(r, c, ((r * 5 + c) as u8 * 7) % limit);
                }
            }
            for r in 0..3 {
                for c in 0..5 {
                    assert_eq!(q.code(r, c), ((r * 5 + c) as u8 * 7) % limit, "{width:?}");
                }
            }
        }
    }

    #[test]
    fn set_code_does_not_disturb_nibble_neighbours() {
        let mut q = QTensor::new_zeroed(
            1,
            4,
            CodeWidth::U4,
            test_lut_u4(),
            GroupLayout::Tensorwise,
            vec![1.0],
        );
        q.set_code(0, 0, 0xA);
        q.set_code(0, 1, 0x3);
        q.set_code(0, 0, 0x5); // rewrite low nibble
        assert_eq!(q.code(0, 0), 0x5);
        assert_eq!(q.code(0, 1), 0x3);
    }

    #[test]
    fn decode_row_matches_get_for_every_layout() {
        for layout in [
            GroupLayout::Tensorwise,
            GroupLayout::Rowwise,
            GroupLayout::Columnwise,
            GroupLayout::Block { nb: 3 },
            GroupLayout::Tile { nb: 3 },
        ] {
            let q = random_qtensor(5, 7, layout, 11);
            let d = q.dequantize();
            for r in 0..5 {
                for c in 0..7 {
                    assert_eq!(d[(r, c)], q.get(r, c), "{layout:?} at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn group_counts_and_indices_are_consistent() {
        for layout in [
            GroupLayout::Tensorwise,
            GroupLayout::Rowwise,
            GroupLayout::Columnwise,
            GroupLayout::Block { nb: 4 },
            GroupLayout::Tile { nb: 4 },
        ] {
            let (rows, cols) = (6, 10);
            let count = layout.group_count(rows, cols);
            let cg = layout.col_groups(cols);
            for r in 0..rows {
                for c in 0..cols {
                    let g = layout.group_index(r, c, cg);
                    assert!(g < count, "{layout:?}: index {g} >= count {count}");
                }
            }
        }
        assert_eq!(GroupLayout::Tensorwise.group_count(0, 8), 0);
    }

    #[test]
    fn packed_storage_is_half_byte_per_element() {
        let q = random_qtensor(64, 128, GroupLayout::Tile { nb: 32 }, 5);
        assert_eq!(q.packed_data_bytes(), 64 * 64);
        assert_eq!(q.scale_bytes(), 64 * 4 * 4);
        let per_elem = q.resident_bytes() as f64 / q.len() as f64;
        assert!(per_elem < 0.7, "bytes/element = {per_elem}");
    }

    #[test]
    fn odd_width_rows_are_padded_per_row() {
        let q = random_qtensor(3, 5, GroupLayout::Rowwise, 6);
        // Each 5-code row occupies 3 bytes; rows must not share bytes.
        assert_eq!(q.packed_data_bytes(), 9);
        let d = q.dequantize();
        for r in 0..3 {
            for c in 0..5 {
                assert_eq!(d[(r, c)], q.get(r, c));
            }
        }
    }

    fn gemm_trio_matches_dense(layout_a: GroupLayout, layout_b: GroupLayout, seed: u64) {
        let (m, k, n) = (9, 14, 11);
        let a = random_qtensor(m, k, layout_a, seed);
        let b = random_qtensor(k, n, layout_b, seed + 1);
        let (da, db) = (a.dequantize(), b.dequantize());

        let c = qgemm(QOperandRef::from(&a), QOperandRef::from(&b));
        assert_eq!(c, matmul(&da, &db), "qgemm {layout_a:?}x{layout_b:?}");

        let bt = random_qtensor(n, k, layout_b, seed + 2);
        let dbt = bt.dequantize();
        let c = qgemm_nt(QOperandRef::from(&a), QOperandRef::from(&bt));
        assert_eq!(
            c,
            matmul_nt(&da, &dbt),
            "qgemm_nt {layout_a:?}x{layout_b:?}"
        );

        let at = random_qtensor(k, m, layout_a, seed + 3);
        let dat = at.dequantize();
        let c = qgemm_tn(QOperandRef::from(&at), QOperandRef::from(&b));
        assert_eq!(
            c,
            matmul_tn(&dat, &db),
            "qgemm_tn {layout_a:?}x{layout_b:?}"
        );
    }

    #[test]
    fn qgemm_kernels_bit_match_dense_kernels() {
        gemm_trio_matches_dense(
            GroupLayout::Tile { nb: 4 },
            GroupLayout::Block { nb: 4 },
            21,
        );
        gemm_trio_matches_dense(GroupLayout::Rowwise, GroupLayout::Columnwise, 22);
        gemm_trio_matches_dense(GroupLayout::Tensorwise, GroupLayout::Tile { nb: 5 }, 23);
    }

    #[test]
    fn mixed_packed_dense_operands_bit_match() {
        let mut rng = Rng::seed_from(31);
        let a = random_qtensor(8, 12, GroupLayout::Tile { nb: 4 }, 32);
        let da = a.dequantize();
        let b = Tensor::randn(12, 10, 1.0, &mut rng);
        assert_eq!(
            qgemm(QOperandRef::from(&a), QOperandRef::from(&b)),
            matmul(&da, &b)
        );
        assert_eq!(
            qgemm(QOperandRef::from(&da), QOperandRef::from(&b)),
            matmul(&da, &b)
        );
        let bt = Tensor::randn(10, 12, 1.0, &mut rng);
        assert_eq!(
            qgemm_nt(QOperandRef::from(&a), QOperandRef::from(&bt)),
            matmul_nt(&da, &bt)
        );
    }

    #[test]
    fn large_parallel_qgemm_bit_matches() {
        // Big enough to cross the threading threshold in matmul.
        let a = random_qtensor(128, 160, GroupLayout::Tile { nb: 32 }, 41);
        let b = random_qtensor(160, 112, GroupLayout::Block { nb: 32 }, 42);
        let (da, db) = (a.dequantize(), b.dequantize());
        assert_eq!(
            qgemm(QOperandRef::from(&a), QOperandRef::from(&b)),
            matmul(&da, &db)
        );
        let bt = random_qtensor(112, 160, GroupLayout::Tile { nb: 32 }, 43);
        let dbt = bt.dequantize();
        assert_eq!(
            qgemm_nt(QOperandRef::from(&a), QOperandRef::from(&bt)),
            matmul_nt(&da, &dbt)
        );
        let at = random_qtensor(160, 128, GroupLayout::Block { nb: 32 }, 44);
        let dat = at.dequantize();
        assert_eq!(
            qgemm_tn(QOperandRef::from(&at), QOperandRef::from(&b)),
            matmul_tn(&dat, &db)
        );
    }

    #[test]
    fn empty_dims_work() {
        let a = QTensor::new_zeroed(
            0,
            4,
            CodeWidth::U4,
            test_lut_u4(),
            GroupLayout::Rowwise,
            vec![],
        );
        let b = random_qtensor(4, 3, GroupLayout::Rowwise, 51);
        let c = qgemm(QOperandRef::from(&a), QOperandRef::from(&b));
        assert_eq!(c.shape(), (0, 3));
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn shape_mismatch_panics() {
        let a = random_qtensor(2, 3, GroupLayout::Rowwise, 61);
        let b = random_qtensor(4, 2, GroupLayout::Rowwise, 62);
        let _ = qgemm(QOperandRef::from(&a), QOperandRef::from(&b));
    }

    #[test]
    fn wire_bytes_counts_codes_and_scales() {
        let q = random_qtensor(4, 32, GroupLayout::Tile { nb: 16 }, 71);
        assert_eq!(q.wire_bytes(), (4 * 16 + 4 * 2 * 4) as u64);
    }
}
