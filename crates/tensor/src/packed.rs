//! Bit-packed subbyte tensors and the quantized GEMM kernels that consume
//! them.
//!
//! The fake-quantization path emulates low-precision GEMMs by rounding
//! operands and immediately re-materializing them as dense `f32` — it gets
//! the *numerics* right but none of the *systems* benefit. [`QTensor`] is
//! the real representation: each element is a small integer **code** (a
//! nibble for 4-bit formats, a byte for 8-bit), decoded through a per-format
//! lookup table and a per-group scale:
//!
//! ```text
//!              ┌ data: packed codes, row-major ───────────────┐
//!   4-bit      │ byte 0: [c1|c0]  byte 1: [c3|c2]  …          │  0.5 B/elem
//!   8-bit      │ byte 0:  c0      byte 1:  c1      …          │  1   B/elem
//!              └──────────────────────────────────────────────┘
//!   lut:    code → representable value        (16 or 256 × f32)
//!   scales: group → decode multiplier         (one f32 per scale group)
//!
//!   value(r, c) = lut[code(r, c)] * scales[group(r, c)]
//! ```
//!
//! The GEMM kernels ([`qgemm`], [`qgemm_nt`], [`qgemm_tn`]) are the *same
//! code* as the dense kernels in [`crate::matmul`]: both families wrap the
//! cache-blocked engine in `crate::engine`, which borrows dense rows in
//! place and decodes packed rows block-wise into reusable per-worker
//! scratch (each packed row is decoded once per block sweep). The
//! per-element accumulation order is therefore *identical*, so a quantized
//! GEMM over packed operands returns bit-for-bit the same result as the
//! dense GEMM over the dequantized operands. Mixed packed×dense products
//! are supported through [`QOperandRef`].
//!
//! 4-bit rows decode through a 256-entry byte → value-pair table
//! ([`QTensor::pair_table`]): one byte load yields both decoded elements
//! with no per-element parity branch.
//!
//! This crate stays format-agnostic: the lookup table and scales are built
//! by `snip-quant`, which knows about FP4/FP8/INT codecs. [`GroupLayout`]
//! mirrors the scaling granularities at the storage level.

use crate::engine::Round;
use crate::matmul::{for_each_row_chunk, parts_for, DECODE_PARALLEL_THRESHOLD};
use crate::Tensor;
use serde::{de_field, Content, Deserialize, Error as SerdeError, Serialize};
use std::sync::Arc;

/// Storage width of one code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodeWidth {
    /// 4-bit codes, two per byte (FP4 E2M1, INT4, narrower integer grids).
    U4,
    /// 8-bit codes, one per byte (FP8 variants, INT8).
    U8,
}

impl CodeWidth {
    /// Number of entries a decode table for this width must have.
    pub fn lut_len(self) -> usize {
        match self {
            CodeWidth::U4 => 16,
            CodeWidth::U8 => 256,
        }
    }

    /// Storage bits per element.
    pub fn bits(self) -> u32 {
        match self {
            CodeWidth::U4 => 4,
            CodeWidth::U8 => 8,
        }
    }

    /// Packed bytes needed for one row of `cols` codes (4-bit rows are
    /// padded to whole bytes so rows stay independently addressable).
    pub fn row_bytes(self, cols: usize) -> usize {
        match self {
            CodeWidth::U4 => cols.div_ceil(2),
            CodeWidth::U8 => cols,
        }
    }
}

/// How decode scales map onto tensor regions — the storage-level mirror of
/// `snip-quant`'s scaling granularities.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupLayout {
    /// One scale for the whole tensor.
    Tensorwise,
    /// One scale per row.
    Rowwise,
    /// One scale per column.
    Columnwise,
    /// One scale per `nb × nb` block.
    Block {
        /// Block side length.
        nb: usize,
    },
    /// One scale per `1 × nb` tile within each row.
    Tile {
        /// Tile length along the row.
        nb: usize,
    },
}

impl GroupLayout {
    /// Number of scale groups for a `rows × cols` tensor (0 when empty).
    pub fn group_count(&self, rows: usize, cols: usize) -> usize {
        if rows == 0 || cols == 0 {
            return 0;
        }
        match *self {
            GroupLayout::Tensorwise => 1,
            GroupLayout::Rowwise => rows,
            GroupLayout::Columnwise => cols,
            GroupLayout::Block { nb } => rows.div_ceil(nb) * cols.div_ceil(nb),
            GroupLayout::Tile { nb } => rows * cols.div_ceil(nb),
        }
    }

    /// Scale groups per row-band of columns (the stride between consecutive
    /// row groups in the scale vector). Public so telemetry (`snip-quant`'s
    /// pack-signal extraction) can map elements to their scale group.
    pub fn col_groups(&self, cols: usize) -> usize {
        match *self {
            GroupLayout::Tensorwise | GroupLayout::Rowwise => 1,
            GroupLayout::Columnwise => cols,
            GroupLayout::Block { nb } | GroupLayout::Tile { nb } => cols.div_ceil(nb),
        }
    }

    /// Index into the scale vector for element `(r, c)`. Group order matches
    /// `snip-quant`'s `Granularity::for_each_group` iteration order.
    /// `col_groups` must come from [`GroupLayout::col_groups`] for the same
    /// `cols`.
    #[inline]
    pub fn group_index(&self, r: usize, c: usize, col_groups: usize) -> usize {
        match *self {
            GroupLayout::Tensorwise => 0,
            GroupLayout::Rowwise => r,
            GroupLayout::Columnwise => c,
            GroupLayout::Block { nb } => (r / nb) * col_groups + c / nb,
            GroupLayout::Tile { nb } => r * col_groups + c / nb,
        }
    }

    /// Length of the run of columns starting at `c` that shares one scale.
    #[inline]
    fn run_len(&self, c: usize, cols: usize) -> usize {
        match *self {
            GroupLayout::Tensorwise | GroupLayout::Rowwise => cols - c,
            GroupLayout::Columnwise => 1,
            GroupLayout::Block { nb } | GroupLayout::Tile { nb } => (nb - c % nb).min(cols - c),
        }
    }
}

/// A bit-packed low-precision tensor: codes + decode table + group scales.
///
/// Invariants: `lut.len() == width.lut_len()`, `scales.len() ==
/// layout.group_count(rows, cols)`, and every stored code indexes a valid
/// table entry. Construction goes through [`QTensor::new_zeroed`] +
/// [`QTensor::set_code`] (all-zero codes are valid: code 0 decodes to 0).
///
/// Serialization stores the codes, scales and decode table verbatim, so a
/// deserialized tensor decodes bit-for-bit identically (packed optimizer
/// state survives checkpoint round trips exactly); the decode table (and
/// the pair table derived from it) loses its cross-tensor interning until
/// the owning format re-quantizes.
#[derive(Clone, Debug, PartialEq)]
pub struct QTensor {
    rows: usize,
    cols: usize,
    width: CodeWidth,
    /// Packed codes, row-major, rows padded to whole bytes.
    data: Vec<u8>,
    /// Code → representable value. Shared per format (a decode table is
    /// format metadata, not per-tensor data), so cloning a `QTensor` or
    /// quantizing many tensors of one format stores the table once.
    lut: Arc<[f32]>,
    /// Byte → decoded `[low nibble, high nibble]` value pairs, flattened
    /// (`pair[2b]`, `pair[2b + 1]`), for 4-bit codes; empty for byte-wide
    /// codes. Derived from `lut` (see [`QTensor::pair_table`]), shared per
    /// format like `lut` when built through a quantizer, and never
    /// serialized — deserialization rebuilds it.
    pair: Arc<[f32]>,
    layout: GroupLayout,
    /// Cached `layout.col_groups(cols)`.
    col_groups: usize,
    /// Group → decode multiplier.
    scales: Vec<f32>,
}

impl Serialize for QTensor {
    fn to_content(&self) -> Content {
        // Field-for-field what `#[derive(Serialize)]` emitted before the
        // derived `pair` table existed — the serialized form is unchanged.
        Content::Map(vec![
            (String::from("rows"), self.rows.to_content()),
            (String::from("cols"), self.cols.to_content()),
            (String::from("width"), self.width.to_content()),
            (String::from("data"), self.data.to_content()),
            (String::from("lut"), self.lut.to_content()),
            (String::from("layout"), self.layout.to_content()),
            (String::from("col_groups"), self.col_groups.to_content()),
            (String::from("scales"), self.scales.to_content()),
        ])
    }
}

impl Deserialize for QTensor {
    fn from_content(c: &Content) -> Result<Self, SerdeError> {
        let lut: Arc<[f32]> = de_field(c, "lut")?;
        Ok(QTensor {
            rows: de_field(c, "rows")?,
            cols: de_field(c, "cols")?,
            width: de_field(c, "width")?,
            data: de_field(c, "data")?,
            pair: QTensor::pair_table(&lut).into(),
            lut,
            layout: de_field(c, "layout")?,
            col_groups: de_field(c, "col_groups")?,
            scales: de_field(c, "scales")?,
        })
    }
}

impl QTensor {
    /// Creates a packed tensor with all codes zero.
    ///
    /// # Panics
    ///
    /// Panics if the lookup table or scale vector lengths do not match the
    /// width/layout.
    pub fn new_zeroed(
        rows: usize,
        cols: usize,
        width: CodeWidth,
        lut: impl Into<Arc<[f32]>>,
        layout: GroupLayout,
        scales: Vec<f32>,
    ) -> Self {
        let lut = lut.into();
        assert_eq!(
            lut.len(),
            width.lut_len(),
            "decode table must have {} entries",
            width.lut_len()
        );
        assert_eq!(
            scales.len(),
            layout.group_count(rows, cols),
            "scale count must match {layout:?} on {rows}x{cols}"
        );
        QTensor {
            rows,
            cols,
            width,
            data: vec![0u8; rows * width.row_bytes(cols)],
            pair: QTensor::pair_table(&lut).into(),
            lut,
            layout,
            col_groups: layout.col_groups(cols),
            scales,
        }
    }

    /// The byte → value-pair expansion of a 4-bit decode table: entry `2b`
    /// is the low-nibble value of byte `b`, entry `2b + 1` the high-nibble
    /// value. This is the table the branch-free 4-bit decode loop reads —
    /// one byte load yields both elements. Tables longer than 16 entries
    /// (byte-wide codes) have no pair expansion and yield an empty vector.
    ///
    /// Quantizers intern the expansion per format (it is format metadata,
    /// exactly like the decode table itself) and pass it through
    /// [`QTensor::from_parts_with_pair`]; the plain constructors build a
    /// private copy.
    pub fn pair_table(lut: &[f32]) -> Vec<f32> {
        if lut.len() != CodeWidth::U4.lut_len() {
            return Vec::new();
        }
        let mut pair = vec![0.0f32; 512];
        for (b, p) in pair.chunks_exact_mut(2).enumerate() {
            p[0] = lut[b & 0x0F];
            p[1] = lut[b >> 4];
        }
        pair
    }

    /// Expected pair-table length for a width: 512 for 4-bit codes (256
    /// bytes × 2 elements), 0 for byte-wide codes.
    fn pair_len(width: CodeWidth) -> usize {
        match width {
            CodeWidth::U4 => 512,
            CodeWidth::U8 => 0,
        }
    }

    /// Creates a packed tensor from an already-filled code buffer (the bulk
    /// construction path quantizers use — no per-element `set_code` calls).
    ///
    /// # Panics
    ///
    /// Panics if `data`, `lut` or `scales` lengths do not match the
    /// shape/width/layout.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        width: CodeWidth,
        lut: impl Into<Arc<[f32]>>,
        layout: GroupLayout,
        scales: Vec<f32>,
        data: Vec<u8>,
    ) -> Self {
        let lut = lut.into();
        let pair: Arc<[f32]> = QTensor::pair_table(&lut).into();
        QTensor::from_parts_with_pair(rows, cols, width, lut, pair, layout, scales, data)
    }

    /// [`QTensor::from_parts`] with a caller-supplied (typically interned)
    /// pair table, so quantizers can share one expansion per format instead
    /// of rebuilding 2 KiB per tensor. The table must be exactly
    /// [`QTensor::pair_table`] of `lut`.
    ///
    /// # Panics
    ///
    /// Panics if any buffer length does not match the shape/width/layout,
    /// or (debug) if `pair` disagrees with `lut`.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts_with_pair(
        rows: usize,
        cols: usize,
        width: CodeWidth,
        lut: impl Into<Arc<[f32]>>,
        pair: Arc<[f32]>,
        layout: GroupLayout,
        scales: Vec<f32>,
        data: Vec<u8>,
    ) -> Self {
        let lut = lut.into();
        assert_eq!(
            data.len(),
            rows * width.row_bytes(cols),
            "code buffer length must match {rows}x{cols} at {width:?}"
        );
        assert_eq!(
            lut.len(),
            width.lut_len(),
            "decode table must have {} entries",
            width.lut_len()
        );
        assert_eq!(
            pair.len(),
            Self::pair_len(width),
            "pair table length must match {width:?}"
        );
        debug_assert!(
            pair.iter()
                .zip(QTensor::pair_table(&lut))
                .all(|(&a, b)| a.to_bits() == b.to_bits()),
            "pair table must be the expansion of the decode table"
        );
        assert_eq!(
            scales.len(),
            layout.group_count(rows, cols),
            "scale count must match {layout:?} on {rows}x{cols}"
        );
        QTensor {
            rows,
            cols,
            width,
            data,
            lut,
            pair,
            layout,
            col_groups: layout.col_groups(cols),
            scales,
        }
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The code storage width.
    pub fn width(&self) -> CodeWidth {
        self.width
    }

    /// The scale-group layout.
    pub fn layout(&self) -> GroupLayout {
        self.layout
    }

    /// The decode table.
    pub fn lut(&self) -> &[f32] {
        &self.lut
    }

    /// The per-group decode multipliers.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The packed code bytes.
    pub fn packed_data(&self) -> &[u8] {
        &self.data
    }

    /// Stores a code at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or the code does not fit the width.
    #[inline]
    pub fn set_code(&mut self, r: usize, c: usize, code: u8) {
        assert!(r < self.rows && c < self.cols, "({r}, {c}) out of bounds");
        match self.width {
            CodeWidth::U4 => {
                assert!(code < 16, "code {code} does not fit 4 bits");
                let byte = &mut self.data[r * self.cols.div_ceil(2) + c / 2];
                if c.is_multiple_of(2) {
                    *byte = (*byte & 0xF0) | code;
                } else {
                    *byte = (*byte & 0x0F) | (code << 4);
                }
            }
            CodeWidth::U8 => self.data[r * self.cols + c] = code,
        }
    }

    /// Reads the code at `(r, c)`.
    #[inline]
    pub fn code(&self, r: usize, c: usize) -> u8 {
        debug_assert!(r < self.rows && c < self.cols);
        match self.width {
            CodeWidth::U4 => {
                let byte = self.data[r * self.cols.div_ceil(2) + c / 2];
                if c.is_multiple_of(2) {
                    byte & 0x0F
                } else {
                    byte >> 4
                }
            }
            CodeWidth::U8 => self.data[r * self.cols + c],
        }
    }

    /// Decodes the element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        let scale = self.scales[self.layout.group_index(r, c, self.col_groups)];
        self.lut[self.code(r, c) as usize] * scale
    }

    /// Decodes row `r` into `out` (length `cols`). This is the hot decode
    /// path of the GEMM engine; scales are applied per constant-scale run
    /// rather than per element, and 4-bit runs decode two elements per byte
    /// load through the pair table with no parity branch.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != cols` or `r` is out of bounds.
    pub fn decode_row_into(&self, r: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols, "decode buffer length mismatch");
        self.decode_row_range_into(r, 0, self.cols, out);
    }

    /// Decodes the column range `[c0, c1)` of row `r` into `out` (length
    /// `c1 - c0`) — the tile-segment decode of the blocked GEMM engine.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`, the range is out of bounds or reversed, or
    /// `out.len() != c1 - c0`.
    pub fn decode_row_range_into(&self, r: usize, c0: usize, c1: usize, out: &mut [f32]) {
        assert!(r < self.rows, "row {r} out of bounds");
        assert!(
            c0 <= c1 && c1 <= self.cols,
            "range {c0}..{c1} out of bounds"
        );
        assert_eq!(out.len(), c1 - c0, "decode buffer length mismatch");
        let mut c = c0;
        while c < c1 {
            let run_end = (c + self.layout.run_len(c, self.cols)).min(c1);
            let scale = self.scales[self.layout.group_index(r, c, self.col_groups)];
            match self.width {
                CodeWidth::U8 => {
                    let base = r * self.cols;
                    crate::engine::simd::decode_u8_run(
                        &self.data[base + c..base + run_end],
                        &self.lut,
                        scale,
                        &mut out[c - c0..run_end - c0],
                    );
                }
                CodeWidth::U4 => {
                    self.decode_u4_run(r, c, run_end, scale, &mut out[c - c0..run_end - c0])
                }
            }
            c = run_end;
        }
    }

    /// Decodes the 4-bit run `[c, end)` of row `r` (one constant scale)
    /// via the pair table: an optional unaligned head nibble, then **two
    /// elements per byte load with no parity branch**, then an optional
    /// tail nibble.
    fn decode_u4_run(&self, r: usize, c: usize, end: usize, scale: f32, out: &mut [f32]) {
        let stride = self.cols.div_ceil(2);
        let row = &self.data[r * stride..(r + 1) * stride];
        let pair = &self.pair;
        let mut c = c;
        let mut o = 0;
        if c % 2 == 1 && c < end {
            out[o] = pair[(row[c / 2] as usize) * 2 + 1] * scale;
            c += 1;
            o += 1;
        }
        let pairs = (end - c) / 2;
        let bytes = &row[c / 2..c / 2 + pairs];
        crate::engine::simd::decode_u4_pairs(
            bytes,
            &self.lut,
            pair,
            scale,
            &mut out[o..o + 2 * pairs],
        );
        if (end - c) % 2 == 1 {
            out[o + 2 * pairs] = pair[(row[(end - 1) / 2] as usize) * 2] * scale;
        }
    }

    /// Decodes the whole tensor into a dense `f32` tensor. Bit-for-bit
    /// identical to what the packing quantizer's fake-quantization path
    /// would have produced. Multi-megabyte tensors decode their row ranges
    /// in parallel on the worker pool (rows are independent, so the result
    /// is identical at every pool size).
    pub fn dequantize(&self) -> Tensor {
        let mut t = Tensor::zeros(self.rows, self.cols);
        let parts = parts_for(self.len(), DECODE_PARALLEL_THRESHOLD);
        let cols = self.cols;
        for_each_row_chunk(
            self.rows,
            parts,
            t.as_mut_slice(),
            cols,
            |start, end, chunk| {
                for r in start..end {
                    self.decode_row_into(r, &mut chunk[(r - start) * cols..(r - start + 1) * cols]);
                }
            },
        );
        t
    }

    /// Bytes of packed code storage (what HBM would hold for the elements).
    pub fn packed_data_bytes(&self) -> usize {
        self.data.len()
    }

    /// Bytes of scale storage.
    pub fn scale_bytes(&self) -> usize {
        self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Bytes a collective must move for this tensor: codes + scales (the
    /// decode table is format metadata, shared per format, not per tensor).
    pub fn wire_bytes(&self) -> u64 {
        (self.packed_data_bytes() + self.scale_bytes()) as u64
    }

    /// Total resident bytes of this value: codes, scales and the container
    /// itself. The decode table is shared per format (an `Arc` owned by the
    /// format's codebook), so it amortizes to zero across tensors and is
    /// not charged here.
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.packed_data_bytes() + self.scale_bytes()
    }
}

/// One GEMM operand: either a dense `f32` tensor (borrowed rows, no copy)
/// or a packed tensor (rows decoded into caller scratch on demand).
#[derive(Clone, Copy, Debug)]
pub enum QOperandRef<'a> {
    /// Dense operand.
    Dense(&'a Tensor),
    /// Packed operand.
    Packed(&'a QTensor),
}

impl<'a> From<&'a Tensor> for QOperandRef<'a> {
    fn from(t: &'a Tensor) -> Self {
        QOperandRef::Dense(t)
    }
}

impl<'a> From<&'a QTensor> for QOperandRef<'a> {
    fn from(t: &'a QTensor) -> Self {
        QOperandRef::Packed(t)
    }
}

impl QOperandRef<'_> {
    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            QOperandRef::Dense(t) => t.shape(),
            QOperandRef::Packed(t) => t.shape(),
        }
    }

    /// The element at `(r, c)` (decoded if packed).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        match self {
            QOperandRef::Dense(t) => t[(r, c)],
            QOperandRef::Packed(t) => t.get(r, c),
        }
    }

    /// Rows `[r0, r1)` as one contiguous row-major block: a direct borrow
    /// for dense operands (their rows are already contiguous), a block
    /// decode into `scratch` for packed ones. Called once per block sweep
    /// by the GEMM engine — this is what bounds packed-row decoding to one
    /// decode per sweep.
    pub(crate) fn rows_block<'s>(
        &'s self,
        r0: usize,
        r1: usize,
        scratch: &'s mut Vec<f32>,
    ) -> &'s [f32] {
        match self {
            QOperandRef::Dense(t) => &t.as_slice()[r0 * t.cols()..r1 * t.cols()],
            QOperandRef::Packed(t) => {
                let cols = t.cols();
                let buf = prep(scratch, (r1 - r0) * cols);
                for r in r0..r1 {
                    t.decode_row_into(r, &mut buf[(r - r0) * cols..(r - r0 + 1) * cols]);
                }
                buf
            }
        }
    }
}

/// Grows `scratch` to at least `len` and returns the `len`-prefix. Contents
/// are unspecified — callers overwrite every element. Never shrinks, so a
/// pool worker's scratch reaches a steady state and stops allocating.
pub(crate) fn prep(scratch: &mut Vec<f32>, len: usize) -> &mut [f32] {
    if scratch.len() < len {
        scratch.resize(len, 0.0);
    }
    &mut scratch[..len]
}

/// `C = A · B` over packed/dense operands (`A`: `M×K`, `B`: `K×N`).
///
/// Bit-for-bit identical to `matmul(&a.dequantize(), &b.dequantize())` —
/// not by analogy but by construction: both run the cache-blocked engine in
/// `crate::engine`, which visits `k` in ascending order per output element
/// regardless of operand storage.
///
/// # Panics
///
/// Panics if inner dimensions differ.
pub fn qgemm(a: QOperandRef<'_>, b: QOperandRef<'_>) -> Tensor {
    let (_, k) = a.shape();
    let (kb, _) = b.shape();
    assert_eq!(k, kb, "qgemm: inner dims differ ({k} vs {kb})");
    crate::engine::gemm_nn(&a, &b, Round::Keep)
}

/// [`qgemm`] with the BF16 output rounding fused into the tile store:
/// bit-identical to `qgemm` followed by [`crate::bf16::round_slice`] on
/// the result, without the second pass over the output. This is the
/// quantized-GEMM form SNIP's linear layers use — their outputs live in
/// BF16 "high precision" (paper Fig. 5).
///
/// # Panics
///
/// Panics if inner dimensions differ.
pub fn qgemm_bf16(a: QOperandRef<'_>, b: QOperandRef<'_>) -> Tensor {
    let (_, k) = a.shape();
    let (kb, _) = b.shape();
    assert_eq!(k, kb, "qgemm_bf16: inner dims differ ({k} vs {kb})");
    crate::engine::gemm_nn(&a, &b, Round::Bf16)
}

/// `C = A · Bᵀ` over packed/dense operands (`A`: `M×K`, `B`: `N×K`) — the
/// forward GEMM of a linear layer with `out × in` weights. Each output
/// element is a single sequential dot product over `k`; packed rows are
/// decoded once per block sweep. Bit-identical to `matmul_nt` on the
/// dequantized operands (shared engine).
///
/// # Panics
///
/// Panics if inner dimensions differ.
pub fn qgemm_nt(a: QOperandRef<'_>, b: QOperandRef<'_>) -> Tensor {
    let (_, k) = a.shape();
    let (_, kb) = b.shape();
    assert_eq!(k, kb, "qgemm_nt: inner dims differ ({k} vs {kb})");
    crate::engine::gemm_nt(&a, &b, Round::Keep)
}

/// [`qgemm_nt`] with fused BF16 output rounding — see [`qgemm_bf16`].
///
/// # Panics
///
/// Panics if inner dimensions differ.
pub fn qgemm_nt_bf16(a: QOperandRef<'_>, b: QOperandRef<'_>) -> Tensor {
    let (_, k) = a.shape();
    let (_, kb) = b.shape();
    assert_eq!(k, kb, "qgemm_nt_bf16: inner dims differ ({k} vs {kb})");
    crate::engine::gemm_nt(&a, &b, Round::Bf16)
}

/// `C = Aᵀ · B` over packed/dense operands (`A`: `K×M`, `B`: `K×N`) — the
/// weight-gradient GEMM `dW = dYᵀ · X`. Bit-identical to `matmul_tn` on
/// the dequantized operands (shared engine).
///
/// # Panics
///
/// Panics if outer dimensions differ.
pub fn qgemm_tn(a: QOperandRef<'_>, b: QOperandRef<'_>) -> Tensor {
    let (k, _) = a.shape();
    let (kb, _) = b.shape();
    assert_eq!(k, kb, "qgemm_tn: outer dims differ ({k} vs {kb})");
    crate::engine::gemm_tn(&a, &b, Round::Keep)
}

/// [`qgemm_tn`] with fused BF16 output rounding — see [`qgemm_bf16`].
///
/// # Panics
///
/// Panics if outer dimensions differ.
pub fn qgemm_tn_bf16(a: QOperandRef<'_>, b: QOperandRef<'_>) -> Tensor {
    let (k, _) = a.shape();
    let (kb, _) = b.shape();
    assert_eq!(k, kb, "qgemm_tn_bf16: outer dims differ ({k} vs {kb})");
    crate::engine::gemm_tn(&a, &b, Round::Bf16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::{matmul, matmul_nt, matmul_tn};
    use crate::rng::Rng;

    /// A little 4-bit sign-magnitude codebook over {0, 0.5, 1, 1.5, …}:
    /// enough structure to exercise packing without snip-quant.
    fn test_lut_u4() -> Vec<f32> {
        let mut lut = vec![0.0f32; 16];
        for i in 0..8 {
            lut[i] = i as f32 * 0.5;
            lut[8 + i] = -(i as f32 * 0.5);
        }
        lut
    }

    fn random_qtensor(rows: usize, cols: usize, layout: GroupLayout, seed: u64) -> QTensor {
        let mut rng = Rng::seed_from(seed);
        let groups = layout.group_count(rows, cols);
        let scales: Vec<f32> = (0..groups).map(|_| 0.25 + rng.next_f32()).collect();
        let mut q = QTensor::new_zeroed(rows, cols, CodeWidth::U4, test_lut_u4(), layout, scales);
        for r in 0..rows {
            for c in 0..cols {
                q.set_code(r, c, (rng.next_u64() % 16) as u8);
            }
        }
        q
    }

    #[test]
    fn codes_round_trip_u4_and_u8() {
        for width in [CodeWidth::U4, CodeWidth::U8] {
            let lut = vec![0.0f32; width.lut_len()];
            let mut q = QTensor::new_zeroed(3, 5, width, lut, GroupLayout::Tensorwise, vec![1.0]);
            let limit = match width {
                CodeWidth::U4 => 16u8,
                CodeWidth::U8 => 255,
            };
            for r in 0..3 {
                for c in 0..5 {
                    q.set_code(r, c, ((r * 5 + c) as u8 * 7) % limit);
                }
            }
            for r in 0..3 {
                for c in 0..5 {
                    assert_eq!(q.code(r, c), ((r * 5 + c) as u8 * 7) % limit, "{width:?}");
                }
            }
        }
    }

    #[test]
    fn set_code_does_not_disturb_nibble_neighbours() {
        let mut q = QTensor::new_zeroed(
            1,
            4,
            CodeWidth::U4,
            test_lut_u4(),
            GroupLayout::Tensorwise,
            vec![1.0],
        );
        q.set_code(0, 0, 0xA);
        q.set_code(0, 1, 0x3);
        q.set_code(0, 0, 0x5); // rewrite low nibble
        assert_eq!(q.code(0, 0), 0x5);
        assert_eq!(q.code(0, 1), 0x3);
    }

    #[test]
    fn decode_row_matches_get_for_every_layout() {
        for layout in [
            GroupLayout::Tensorwise,
            GroupLayout::Rowwise,
            GroupLayout::Columnwise,
            GroupLayout::Block { nb: 3 },
            GroupLayout::Tile { nb: 3 },
        ] {
            let q = random_qtensor(5, 7, layout, 11);
            let d = q.dequantize();
            for r in 0..5 {
                for c in 0..7 {
                    assert_eq!(d[(r, c)], q.get(r, c), "{layout:?} at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn group_counts_and_indices_are_consistent() {
        for layout in [
            GroupLayout::Tensorwise,
            GroupLayout::Rowwise,
            GroupLayout::Columnwise,
            GroupLayout::Block { nb: 4 },
            GroupLayout::Tile { nb: 4 },
        ] {
            let (rows, cols) = (6, 10);
            let count = layout.group_count(rows, cols);
            let cg = layout.col_groups(cols);
            for r in 0..rows {
                for c in 0..cols {
                    let g = layout.group_index(r, c, cg);
                    assert!(g < count, "{layout:?}: index {g} >= count {count}");
                }
            }
        }
        assert_eq!(GroupLayout::Tensorwise.group_count(0, 8), 0);
    }

    #[test]
    fn packed_storage_is_half_byte_per_element() {
        let q = random_qtensor(64, 128, GroupLayout::Tile { nb: 32 }, 5);
        assert_eq!(q.packed_data_bytes(), 64 * 64);
        assert_eq!(q.scale_bytes(), 64 * 4 * 4);
        let per_elem = q.resident_bytes() as f64 / q.len() as f64;
        assert!(per_elem < 0.7, "bytes/element = {per_elem}");
    }

    #[test]
    fn odd_width_rows_are_padded_per_row() {
        let q = random_qtensor(3, 5, GroupLayout::Rowwise, 6);
        // Each 5-code row occupies 3 bytes; rows must not share bytes.
        assert_eq!(q.packed_data_bytes(), 9);
        let d = q.dequantize();
        for r in 0..3 {
            for c in 0..5 {
                assert_eq!(d[(r, c)], q.get(r, c));
            }
        }
    }

    fn gemm_trio_matches_dense(layout_a: GroupLayout, layout_b: GroupLayout, seed: u64) {
        let (m, k, n) = (9, 14, 11);
        let a = random_qtensor(m, k, layout_a, seed);
        let b = random_qtensor(k, n, layout_b, seed + 1);
        let (da, db) = (a.dequantize(), b.dequantize());

        let c = qgemm(QOperandRef::from(&a), QOperandRef::from(&b));
        assert_eq!(c, matmul(&da, &db), "qgemm {layout_a:?}x{layout_b:?}");

        let bt = random_qtensor(n, k, layout_b, seed + 2);
        let dbt = bt.dequantize();
        let c = qgemm_nt(QOperandRef::from(&a), QOperandRef::from(&bt));
        assert_eq!(
            c,
            matmul_nt(&da, &dbt),
            "qgemm_nt {layout_a:?}x{layout_b:?}"
        );

        let at = random_qtensor(k, m, layout_a, seed + 3);
        let dat = at.dequantize();
        let c = qgemm_tn(QOperandRef::from(&at), QOperandRef::from(&b));
        assert_eq!(
            c,
            matmul_tn(&dat, &db),
            "qgemm_tn {layout_a:?}x{layout_b:?}"
        );
    }

    #[test]
    fn qgemm_kernels_bit_match_dense_kernels() {
        gemm_trio_matches_dense(
            GroupLayout::Tile { nb: 4 },
            GroupLayout::Block { nb: 4 },
            21,
        );
        gemm_trio_matches_dense(GroupLayout::Rowwise, GroupLayout::Columnwise, 22);
        gemm_trio_matches_dense(GroupLayout::Tensorwise, GroupLayout::Tile { nb: 5 }, 23);
    }

    #[test]
    fn mixed_packed_dense_operands_bit_match() {
        let mut rng = Rng::seed_from(31);
        let a = random_qtensor(8, 12, GroupLayout::Tile { nb: 4 }, 32);
        let da = a.dequantize();
        let b = Tensor::randn(12, 10, 1.0, &mut rng);
        assert_eq!(
            qgemm(QOperandRef::from(&a), QOperandRef::from(&b)),
            matmul(&da, &b)
        );
        assert_eq!(
            qgemm(QOperandRef::from(&da), QOperandRef::from(&b)),
            matmul(&da, &b)
        );
        let bt = Tensor::randn(10, 12, 1.0, &mut rng);
        assert_eq!(
            qgemm_nt(QOperandRef::from(&a), QOperandRef::from(&bt)),
            matmul_nt(&da, &bt)
        );
    }

    #[test]
    fn large_parallel_qgemm_bit_matches() {
        // Big enough to cross the threading threshold in matmul.
        let a = random_qtensor(128, 160, GroupLayout::Tile { nb: 32 }, 41);
        let b = random_qtensor(160, 112, GroupLayout::Block { nb: 32 }, 42);
        let (da, db) = (a.dequantize(), b.dequantize());
        assert_eq!(
            qgemm(QOperandRef::from(&a), QOperandRef::from(&b)),
            matmul(&da, &db)
        );
        let bt = random_qtensor(112, 160, GroupLayout::Tile { nb: 32 }, 43);
        let dbt = bt.dequantize();
        assert_eq!(
            qgemm_nt(QOperandRef::from(&a), QOperandRef::from(&bt)),
            matmul_nt(&da, &dbt)
        );
        let at = random_qtensor(160, 128, GroupLayout::Block { nb: 32 }, 44);
        let dat = at.dequantize();
        assert_eq!(
            qgemm_tn(QOperandRef::from(&at), QOperandRef::from(&b)),
            matmul_tn(&dat, &db)
        );
    }

    #[test]
    fn empty_dims_work() {
        let a = QTensor::new_zeroed(
            0,
            4,
            CodeWidth::U4,
            test_lut_u4(),
            GroupLayout::Rowwise,
            vec![],
        );
        let b = random_qtensor(4, 3, GroupLayout::Rowwise, 51);
        let c = qgemm(QOperandRef::from(&a), QOperandRef::from(&b));
        assert_eq!(c.shape(), (0, 3));
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn shape_mismatch_panics() {
        let a = random_qtensor(2, 3, GroupLayout::Rowwise, 61);
        let b = random_qtensor(4, 2, GroupLayout::Rowwise, 62);
        let _ = qgemm(QOperandRef::from(&a), QOperandRef::from(&b));
    }

    #[test]
    fn decode_row_range_matches_get_for_every_layout_and_range() {
        for layout in [
            GroupLayout::Tensorwise,
            GroupLayout::Rowwise,
            GroupLayout::Columnwise,
            GroupLayout::Block { nb: 3 },
            GroupLayout::Tile { nb: 3 },
        ] {
            let q = random_qtensor(4, 11, layout, 83);
            for c0 in 0..=11 {
                for c1 in c0..=11 {
                    let mut out = vec![0.0f32; c1 - c0];
                    for r in 0..4 {
                        q.decode_row_range_into(r, c0, c1, &mut out);
                        for (i, &v) in out.iter().enumerate() {
                            assert_eq!(
                                v.to_bits(),
                                q.get(r, c0 + i).to_bits(),
                                "{layout:?} row {r} range {c0}..{c1} elem {i}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pair_table_decode_matches_per_code_lut() {
        // Every byte value must decode to exactly lut[low], lut[high].
        let lut = test_lut_u4();
        let pair = QTensor::pair_table(&lut);
        assert_eq!(pair.len(), 512);
        for b in 0..256usize {
            assert_eq!(pair[2 * b].to_bits(), lut[b & 0x0F].to_bits());
            assert_eq!(pair[2 * b + 1].to_bits(), lut[b >> 4].to_bits());
        }
        // Byte-wide tables have no pair expansion.
        assert!(QTensor::pair_table(&vec![0.0f32; 256]).is_empty());
    }

    #[test]
    fn serde_round_trip_preserves_decode_and_format() {
        // The `pair` table is derived state: it is not serialized, and a
        // deserialized tensor must rebuild it and decode bit-identically.
        let q = random_qtensor(5, 9, GroupLayout::Tile { nb: 4 }, 91);
        let json = serde_json::to_string(&q).expect("serialize");
        assert!(!json.contains("pair"), "pair table must not be serialized");
        let back: QTensor = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, q);
        let (d0, d1) = (q.dequantize(), back.dequantize());
        for (a, b) in d0.as_slice().iter().zip(d1.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Packed codes always decode to finite values, but the *dense* side of
    /// a mixed product can carry NaN/Inf — and a packed zero code must not
    /// mask it (`0 × NaN = NaN`). The old kernels skipped zero A elements
    /// and dropped exactly this propagation; dense and packed kernels now
    /// share one engine with no zero-skip.
    #[test]
    fn packed_zeros_do_not_mask_non_finite_dense_operands() {
        // A: packed, all-zero codes (decodes to exact 0.0 everywhere).
        let a = QTensor::new_zeroed(
            3,
            4,
            CodeWidth::U4,
            test_lut_u4(),
            GroupLayout::Rowwise,
            vec![1.0; 3],
        );
        let mut b = Tensor::zeros(4, 5);
        b[(1, 2)] = f32::NAN;
        b[(3, 0)] = f32::INFINITY;
        let c = qgemm(QOperandRef::from(&a), QOperandRef::from(&b));
        assert!(c[(0, 2)].is_nan(), "0-code · NaN must propagate");
        assert!(c[(0, 0)].is_nan(), "0-code · Inf must yield NaN");
        assert_eq!(c[(1, 1)], 0.0);

        // Same through the tn orientation.
        let at = QTensor::new_zeroed(
            4,
            3,
            CodeWidth::U4,
            test_lut_u4(),
            GroupLayout::Rowwise,
            vec![1.0; 4],
        );
        let c = qgemm_tn(QOperandRef::from(&at), QOperandRef::from(&b));
        assert!(c[(2, 2)].is_nan());
        assert!(c[(1, 0)].is_nan());
    }

    #[test]
    fn wire_bytes_counts_codes_and_scales() {
        let q = random_qtensor(4, 32, GroupLayout::Tile { nb: 16 }, 71);
        assert_eq!(q.wire_bytes(), (4 * 16 + 4 * 2 * 4) as u64);
    }
}
