//! Deterministic random number generation.
//!
//! SNIP's experiments must be reproducible bit-for-bit: checkpoints, noise
//! probes (paper Fig. 6, Steps 2–3) and stochastic rounding all consume
//! randomness. We implement xoshiro256++ seeded through SplitMix64 rather
//! than depending on an external RNG crate so the streams are stable across
//! platforms and dependency upgrades (see DESIGN.md §4.4).

use serde::{Deserialize, Serialize};

/// A deterministic xoshiro256++ random number generator.
///
/// # Example
///
/// ```
/// use snip_tensor::rng::Rng;
/// let mut a = Rng::seed_from(7);
/// let mut b = Rng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rng {
    state: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    #[serde(default)]
    gauss_spare: Option<u64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Two generators built from the same seed produce identical streams.
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        Rng {
            state,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// subsystem (data, init, rounding, probes) its own stream.
    pub fn fork(&mut self, stream: u64) -> Self {
        let a = self.next_u64();
        Rng::seed_from(a ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection-free enough for simulation purposes:
        // 64-bit multiply-shift gives negligible bias for bound << 2^64.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Standard normal sample via the Box–Muller transform.
    #[inline]
    pub fn next_gaussian(&mut self) -> f64 {
        if let Some(bits) = self.gauss_spare.take() {
            return f64::from_bits(bits);
        }
        // Draw until u1 is strictly positive so ln(u1) is finite.
        let mut u1 = self.next_f64();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.next_f64();
        }
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        let (s, c) = theta.sin_cos();
        self.gauss_spare = Some((r * s).to_bits());
        r * c
    }

    /// Fills `out` with i.i.d. normal samples of the given standard deviation.
    pub fn fill_gaussian(&mut self, out: &mut [f32], std: f32) {
        for v in out.iter_mut() {
            *v = (self.next_gaussian() as f32) * std;
        }
    }

    /// Fills `out` with uniform samples in `[lo, hi)`.
    pub fn fill_uniform(&mut self, out: &mut [f32], lo: f32, hi: f32) {
        for v in out.iter_mut() {
            *v = lo + (hi - lo) * self.next_f32();
        }
    }

    /// Samples an index according to the (unnormalized) weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn sample_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

impl Default for Rng {
    fn default() -> Self {
        Rng::seed_from(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_unit_interval() {
        let mut rng = Rng::seed_from(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng::seed_from(17);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = rng.next_gaussian();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut rng = Rng::seed_from(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i = rng.below(7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fork_gives_independent_stream() {
        let mut parent = Rng::seed_from(5);
        let mut child = parent.fork(1);
        let a: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn weighted_sampling_prefers_heavy_weight() {
        let mut rng = Rng::seed_from(11);
        let weights = [0.05, 0.9, 0.05];
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            counts[rng.sample_weighted(&weights)] += 1;
        }
        assert!(counts[1] > counts[0] + counts[2]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(4);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn serde_round_trip_preserves_stream() {
        let mut rng = Rng::seed_from(77);
        rng.next_gaussian(); // populate spare
        let json = serde_json::to_string(&rng).unwrap();
        let mut restored: Rng = serde_json::from_str(&json).unwrap();
        assert_eq!(rng.next_u64(), restored.next_u64());
    }
}
