//! GEMM kernels in the three orientations a linear layer needs.
//!
//! A SNIP linear layer computes (paper Fig. 5):
//!
//! * forward: `Y = X · Wᵀ` — [`matmul_nt`]
//! * input gradient: `dX = dY · W` — [`matmul`]
//! * weight gradient: `dW = dYᵀ · X` — [`matmul_tn`]
//!
//! All three are thin dense-operand wrappers over the cache-blocked engine
//! in `crate::engine`, which also serves the packed kernels in
//! [`crate::packed`] — the two families share one code path, which is what
//! makes packed results bit-identical to dense results over dequantized
//! operands. Large problems are split into row chunks dispatched on the
//! persistent worker pool in [`crate::pool`]; each output row is written by
//! exactly one task and the per-element accumulation order is fixed
//! (`k` ascending), so results are deterministic — bit-identical — for
//! every pool size and `SNIP_THREADS` setting.

use crate::engine::Round;
use crate::pool;
use crate::Tensor;

/// The small-GEMM fast-path cutoff (in multiply–accumulates): problems
/// below it skip pool dispatch and the shared B-tile cache entirely.
/// Re-exported so `bench_gemm`'s `small_gemm` sweep can report shapes
/// relative to the boundary it is tuning.
pub use crate::engine::SMALL_GEMM_MACS;

/// Problems smaller than this many multiply–accumulates run single-threaded.
/// Dispatch on the persistent pool costs a queue push plus a condvar wake
/// (single-digit microseconds — the old per-call `std::thread::scope` spawn
/// paid tens of microseconds per GEMM), so parallelism pays once the serial
/// kernel takes a few hundred microseconds: around 2^20 MACs on commodity
/// cores.
const PARALLEL_THRESHOLD: usize = 1 << 20;

/// Per-element work below which a decode-bound rowwise operation (e.g.
/// [`crate::QTensor::dequantize`]) stays single-threaded. Decoding is a few
/// ops per element, so the break-even point is far more elements than for a
/// GEMM's `m·n·k` MAC count.
pub(crate) const DECODE_PARALLEL_THRESHOLD: usize = 1 << 20;

/// Number of row chunks a problem of `work` units should split into:
/// 1 below `threshold`, the cached pool size above it, and the forced
/// split width inside [`pool::with_threads`] regardless of size.
pub(crate) fn parts_for(work: usize, threshold: usize) -> usize {
    if let Some(n) = pool::forced_threads() {
        return n;
    }
    if work < threshold {
        1
    } else {
        pool::size()
    }
}

pub(crate) fn thread_count(work: usize) -> usize {
    parts_for(work, PARALLEL_THRESHOLD)
}

/// Splits `rows` into `parts` contiguous chunks and runs `f(start, end,
/// chunk)` for each chunk — on the persistent worker pool when `parts > 1`.
/// Each chunk owns the disjoint output slice for its rows, so which worker
/// runs it cannot affect the result.
///
/// # Panics
///
/// Panics if `out.len() != rows * cols`.
pub(crate) fn for_each_row_chunk(
    rows: usize,
    parts: usize,
    out: &mut [f32],
    cols: usize,
    f: impl Fn(usize, usize, &mut [f32]) + Sync,
) {
    assert_eq!(out.len(), rows * cols, "output buffer shape mismatch");
    if parts <= 1 || rows <= 1 {
        f(0, rows, out);
        return;
    }
    let chunk_rows = rows.div_ceil(parts);
    let n_chunks = rows.div_ceil(chunk_rows);
    struct SendPtr(*mut f32);
    unsafe impl Send for SendPtr {}
    unsafe impl Sync for SendPtr {}
    impl SendPtr {
        fn get(&self) -> *mut f32 {
            self.0
        }
    }
    let base = SendPtr(out.as_mut_ptr());
    pool::run(n_chunks, &|ci| {
        let start = ci * chunk_rows;
        let end = ((ci + 1) * chunk_rows).min(rows);
        // SAFETY: chunks are disjoint row ranges of `out` (chunk `ci` owns
        // rows [ci*chunk_rows, (ci+1)*chunk_rows)), `out` outlives the
        // dispatch (`pool::run` returns only after every task completed),
        // and the bounds were validated against `out.len()` above.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(base.get().add(start * cols), (end - start) * cols)
        };
        f(start, end, chunk);
    });
}

/// `C = A · B` where `A` is `M×K` and `B` is `K×N`.
///
/// # Panics
///
/// Panics if `A.cols() != B.rows()`.
///
/// # Example
///
/// ```
/// use snip_tensor::{Tensor, matmul::matmul};
/// let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Tensor::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
/// assert_eq!(matmul(&a, &b).as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (_, k) = a.shape();
    let (kb, _) = b.shape();
    assert_eq!(k, kb, "matmul: inner dims differ ({k} vs {kb})");
    crate::engine::gemm_nn(&a.into(), &b.into(), Round::Keep)
}

/// [`matmul`] with the BF16 output rounding fused into the tile store:
/// bit-identical to `matmul` followed by [`crate::bf16::round_slice`] on
/// the result, without the second pass over the output (each element is
/// final when its tile is stored, so rounding at store time rounds the
/// same value exactly once).
///
/// # Panics
///
/// Panics if `A.cols() != B.rows()`.
pub fn matmul_bf16(a: &Tensor, b: &Tensor) -> Tensor {
    let (_, k) = a.shape();
    let (kb, _) = b.shape();
    assert_eq!(k, kb, "matmul_bf16: inner dims differ ({k} vs {kb})");
    crate::engine::gemm_nn(&a.into(), &b.into(), Round::Bf16)
}

/// `C = A · Bᵀ` where `A` is `M×K` and `B` is `N×K` (the forward GEMM of a
/// linear layer whose weight is stored `out_features × in_features`).
///
/// # Panics
///
/// Panics if `A.cols() != B.cols()`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (_, k) = a.shape();
    let (_, kb) = b.shape();
    assert_eq!(k, kb, "matmul_nt: inner dims differ ({k} vs {kb})");
    crate::engine::gemm_nt(&a.into(), &b.into(), Round::Keep)
}

/// [`matmul_nt`] with fused BF16 output rounding — see [`matmul_bf16`].
///
/// # Panics
///
/// Panics if `A.cols() != B.cols()`.
pub fn matmul_nt_bf16(a: &Tensor, b: &Tensor) -> Tensor {
    let (_, k) = a.shape();
    let (_, kb) = b.shape();
    assert_eq!(k, kb, "matmul_nt_bf16: inner dims differ ({k} vs {kb})");
    crate::engine::gemm_nt(&a.into(), &b.into(), Round::Bf16)
}

/// `C = Aᵀ · B` where `A` is `K×M` and `B` is `K×N` (the weight-gradient GEMM
/// `dW = dYᵀ · X`).
///
/// # Panics
///
/// Panics if `A.rows() != B.rows()`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, _) = a.shape();
    let (kb, _) = b.shape();
    assert_eq!(k, kb, "matmul_tn: outer dims differ ({k} vs {kb})");
    crate::engine::gemm_tn(&a.into(), &b.into(), Round::Keep)
}

/// [`matmul_tn`] with fused BF16 output rounding — see [`matmul_bf16`].
///
/// # Panics
///
/// Panics if `A.rows() != B.rows()`.
pub fn matmul_tn_bf16(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, _) = a.shape();
    let (kb, _) = b.shape();
    assert_eq!(k, kb, "matmul_tn_bf16: outer dims differ ({k} vs {kb})");
    crate::engine::gemm_tn(&a.into(), &b.into(), Round::Bf16)
}

/// Reference (naive triple-loop) GEMM used by tests and benchmarks.
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "matmul_reference: inner dims differ");
    let mut c = Tensor::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[(i, kk)] * b[(kk, j)];
            }
            c[(i, j)] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_reference() {
        let mut rng = Rng::seed_from(1);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (16, 8, 16), (33, 17, 9)] {
            let a = Tensor::randn(m, k, 1.0, &mut rng);
            let b = Tensor::randn(k, n, 1.0, &mut rng);
            assert_close(&matmul(&a, &b), &matmul_reference(&a, &b), 1e-4);
        }
    }

    #[test]
    fn matmul_nt_matches_transposed_reference() {
        let mut rng = Rng::seed_from(2);
        let a = Tensor::randn(7, 11, 1.0, &mut rng);
        let b = Tensor::randn(5, 11, 1.0, &mut rng);
        let expect = matmul_reference(&a, &b.transposed());
        assert_close(&matmul_nt(&a, &b), &expect, 1e-4);
    }

    #[test]
    fn matmul_tn_matches_transposed_reference() {
        let mut rng = Rng::seed_from(3);
        let a = Tensor::randn(11, 7, 1.0, &mut rng);
        let b = Tensor::randn(11, 5, 1.0, &mut rng);
        let expect = matmul_reference(&a.transposed(), &b);
        assert_close(&matmul_tn(&a, &b), &expect, 1e-4);
    }

    #[test]
    fn large_parallel_matmul_matches_reference() {
        // Big enough to exercise multiple blocks; forced splits exercise the
        // pool even below the work threshold.
        let mut rng = Rng::seed_from(4);
        let a = Tensor::randn(128, 64, 1.0, &mut rng);
        let b = Tensor::randn(64, 96, 1.0, &mut rng);
        let expect = matmul_reference(&a, &b);
        assert_close(&matmul(&a, &b), &expect, 1e-3);
        let split = crate::pool::with_threads(4, || matmul(&a, &b));
        assert_close(&split, &expect, 1e-3);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed_from(5);
        let a = Tensor::randn(6, 6, 1.0, &mut rng);
        let id = Tensor::from_fn(6, 6, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_close(&matmul(&a, &id), &a, 1e-6);
        assert_close(&matmul(&id, &a), &a, 1e-6);
    }

    #[test]
    fn empty_dims_work() {
        let a = Tensor::zeros(0, 4);
        let b = Tensor::zeros(4, 3);
        assert_eq!(matmul(&a, &b).shape(), (0, 3));
        let a = Tensor::zeros(2, 0);
        let b = Tensor::zeros(0, 3);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 3));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    /// A zero on the A side must not mask a NaN/Inf on the B side: IEEE-754
    /// says `0 × NaN = NaN` and `0 × Inf = NaN`, and an overflow or a
    /// poisoned activation upstream has to surface in the loss, not vanish.
    /// (The old kernels skipped `aik == 0.0` inner loops, silently dropping
    /// exactly this propagation — and defeating vectorization.)
    #[test]
    fn zeros_do_not_mask_non_finite_operands() {
        let m = 3;
        let k = 4;
        let n = 5;
        // A is all zeros; B carries a NaN row and an Inf row.
        let a = Tensor::zeros(m, k);
        let mut b = Tensor::zeros(k, n);
        b[(1, 2)] = f32::NAN;
        b[(3, 0)] = f32::INFINITY;

        let c = matmul(&a, &b);
        assert!(
            c[(0, 2)].is_nan(),
            "0 · NaN must propagate, got {}",
            c[(0, 2)]
        );
        assert!(
            c[(0, 0)].is_nan(),
            "0 · Inf must yield NaN, got {}",
            c[(0, 0)]
        );
        assert_eq!(c[(0, 1)], 0.0);

        // Same property through the tn orientation (A transposed, zeros in A).
        let at = Tensor::zeros(k, m);
        let c = matmul_tn(&at, &b);
        assert!(c[(1, 2)].is_nan());
        assert!(c[(2, 0)].is_nan());

        // And nt: a NaN in B's K dimension hits every dot it participates in.
        let mut bt = Tensor::zeros(n, k);
        bt[(2, 1)] = f32::NAN;
        let c = matmul_nt(&a, &bt);
        assert!(c[(0, 2)].is_nan());
        assert_eq!(c[(0, 0)], 0.0);
    }
}
