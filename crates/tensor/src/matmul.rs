//! GEMM kernels in the three orientations a linear layer needs.
//!
//! A SNIP linear layer computes (paper Fig. 5):
//!
//! * forward: `Y = X · Wᵀ` — [`matmul_nt`]
//! * input gradient: `dX = dY · W` — [`matmul`]
//! * weight gradient: `dW = dYᵀ · X` — [`matmul_tn`]
//!
//! Kernels use cache-friendly loop orders and split work across a small
//! number of threads for large problems. Each output row is written by
//! exactly one thread and the per-row accumulation order is fixed, so results
//! are deterministic regardless of thread count.

use crate::Tensor;

/// Problems smaller than this many multiply–accumulates run single-threaded.
/// `std::thread::scope` spawns cost tens of microseconds (more under load),
/// so parallelism only pays once the serial kernel takes a few milliseconds
/// — around 2^22 MACs on commodity cores.
const PARALLEL_THRESHOLD: usize = 1 << 22;

pub(crate) fn thread_count(work: usize) -> usize {
    if work < PARALLEL_THRESHOLD {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Splits `rows` into `parts` contiguous chunks and runs `f(start, end)` for
/// each chunk, in parallel when `parts > 1`.
pub(crate) fn for_each_row_chunk(
    rows: usize,
    parts: usize,
    out: &mut [f32],
    cols: usize,
    f: impl Fn(usize, usize, &mut [f32]) + Sync,
) {
    if parts <= 1 || rows <= 1 {
        f(0, rows, out);
        return;
    }
    let chunk_rows = rows.div_ceil(parts);
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut start = 0;
        let f = &f;
        while start < rows {
            let end = (start + chunk_rows).min(rows);
            let take = (end - start) * cols;
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            scope.spawn(move || f(start, end, head));
            start = end;
        }
    });
}

/// `C = A · B` where `A` is `M×K` and `B` is `K×N`.
///
/// # Panics
///
/// Panics if `A.cols() != B.rows()`.
///
/// # Example
///
/// ```
/// use snip_tensor::{Tensor, matmul::matmul};
/// let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Tensor::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
/// assert_eq!(matmul(&a, &b).as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "matmul: inner dims differ ({k} vs {kb})");
    let mut c = Tensor::zeros(m, n);
    let threads = thread_count(m * n * k);
    let cdata = c.as_mut_slice();
    for_each_row_chunk(m, threads, cdata, n, |start, end, chunk| {
        for i in start..end {
            let crow = &mut chunk[(i - start) * n..(i - start + 1) * n];
            let arow = a.row(i);
            for (kk, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = b.row(kk);
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += aik * bv;
                }
            }
        }
    });
    c
}

/// `C = A · Bᵀ` where `A` is `M×K` and `B` is `N×K` (the forward GEMM of a
/// linear layer whose weight is stored `out_features × in_features`).
///
/// # Panics
///
/// Panics if `A.cols() != B.cols()`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(k, kb, "matmul_nt: inner dims differ ({k} vs {kb})");
    let mut c = Tensor::zeros(m, n);
    let threads = thread_count(m * n * k);
    let cdata = c.as_mut_slice();
    for_each_row_chunk(m, threads, cdata, n, |start, end, chunk| {
        for i in start..end {
            let arow = a.row(i);
            let crow = &mut chunk[(i - start) * n..(i - start + 1) * n];
            for (j, cv) in crow.iter_mut().enumerate() {
                let brow = b.row(j);
                let mut acc = 0.0f32;
                for (x, y) in arow.iter().zip(brow) {
                    acc += x * y;
                }
                *cv = acc;
            }
        }
    });
    c
}

/// `C = Aᵀ · B` where `A` is `K×M` and `B` is `K×N` (the weight-gradient GEMM
/// `dW = dYᵀ · X`).
///
/// # Panics
///
/// Panics if `A.rows() != B.rows()`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "matmul_tn: outer dims differ ({k} vs {kb})");
    let mut c = Tensor::zeros(m, n);
    let threads = thread_count(m * n * k);
    let cdata = c.as_mut_slice();
    for_each_row_chunk(m, threads, cdata, n, |start, end, chunk| {
        for kk in 0..k {
            let arow = a.row(kk);
            let brow = b.row(kk);
            for i in start..end {
                let aik = arow[i];
                if aik == 0.0 {
                    continue;
                }
                let crow = &mut chunk[(i - start) * n..(i - start + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += aik * bv;
                }
            }
        }
    });
    c
}

/// Reference (naive triple-loop) GEMM used by tests and benchmarks.
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "matmul_reference: inner dims differ");
    let mut c = Tensor::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[(i, kk)] * b[(kk, j)];
            }
            c[(i, j)] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_reference() {
        let mut rng = Rng::seed_from(1);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (16, 8, 16), (33, 17, 9)] {
            let a = Tensor::randn(m, k, 1.0, &mut rng);
            let b = Tensor::randn(k, n, 1.0, &mut rng);
            assert_close(&matmul(&a, &b), &matmul_reference(&a, &b), 1e-4);
        }
    }

    #[test]
    fn matmul_nt_matches_transposed_reference() {
        let mut rng = Rng::seed_from(2);
        let a = Tensor::randn(7, 11, 1.0, &mut rng);
        let b = Tensor::randn(5, 11, 1.0, &mut rng);
        let expect = matmul_reference(&a, &b.transposed());
        assert_close(&matmul_nt(&a, &b), &expect, 1e-4);
    }

    #[test]
    fn matmul_tn_matches_transposed_reference() {
        let mut rng = Rng::seed_from(3);
        let a = Tensor::randn(11, 7, 1.0, &mut rng);
        let b = Tensor::randn(11, 5, 1.0, &mut rng);
        let expect = matmul_reference(&a.transposed(), &b);
        assert_close(&matmul_tn(&a, &b), &expect, 1e-4);
    }

    #[test]
    fn large_parallel_matmul_matches_reference() {
        // Big enough to cross PARALLEL_THRESHOLD.
        let mut rng = Rng::seed_from(4);
        let a = Tensor::randn(128, 64, 1.0, &mut rng);
        let b = Tensor::randn(64, 96, 1.0, &mut rng);
        assert_close(&matmul(&a, &b), &matmul_reference(&a, &b), 1e-3);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed_from(5);
        let a = Tensor::randn(6, 6, 1.0, &mut rng);
        let id = Tensor::from_fn(6, 6, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_close(&matmul(&a, &id), &a, 1e-6);
        assert_close(&matmul(&id, &a), &a, 1e-6);
    }

    #[test]
    fn empty_dims_work() {
        let a = Tensor::zeros(0, 4);
        let b = Tensor::zeros(4, 3);
        assert_eq!(matmul(&a, &b).shape(), (0, 3));
        let a = Tensor::zeros(2, 0);
        let b = Tensor::zeros(0, 3);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 3));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }
}
