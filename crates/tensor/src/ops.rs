//! Elementwise and reduction operations used by the transformer stack.

use crate::Tensor;

/// Numerically stable softmax applied to each row in place.
///
/// # Example
///
/// ```
/// use snip_tensor::{Tensor, ops::softmax_rows_inplace};
/// let mut t = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
/// softmax_rows_inplace(&mut t);
/// let s: f32 = t.as_slice().iter().sum();
/// assert!((s - 1.0).abs() < 1e-6);
/// ```
pub fn softmax_rows_inplace(t: &mut Tensor) {
    let cols = t.cols();
    if cols == 0 {
        return;
    }
    for r in 0..t.rows() {
        let row = t.row_mut(r);
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// SiLU activation `x * sigmoid(x)` (the "Swish" in SwiGLU).
#[inline]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Derivative of [`silu`] with respect to its input.
#[inline]
pub fn silu_grad(x: f32) -> f32 {
    let s = 1.0 / (1.0 + (-x).exp());
    s * (1.0 + x * (1.0 - s))
}

/// Frobenius norm of a raw slice (ℓ2 of the flattened data), `f64` accumulation.
pub fn frobenius_norm(data: &[f32]) -> f64 {
    data.iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        .sqrt()
}

/// Frobenius norm of the difference of two same-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn frobenius_distance(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Dot product with `f64` accumulation.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x as f64) * (y as f64))
        .sum()
}

/// Per-row Frobenius norms of a tensor (length = `rows`).
///
/// SNIP's memory-efficient statistics use row-wise norms instead of a single
/// global norm (paper §6.3 "Memory Overhead of SNIP").
pub fn row_norms(t: &Tensor) -> Vec<f64> {
    (0..t.rows()).map(|r| frobenius_norm(t.row(r))).collect()
}

/// Reconstructs the global Frobenius norm from row-wise norms.
pub fn norm_from_row_norms(row_norms: &[f64]) -> f64 {
    row_norms.iter().map(|&n| n * n).sum::<f64>().sqrt()
}

/// Sum of each column (length = `cols`); used for bias-style reductions.
pub fn column_sums(t: &Tensor) -> Vec<f64> {
    let mut sums = vec![0.0f64; t.cols()];
    for r in 0..t.rows() {
        for (s, &v) in sums.iter_mut().zip(t.row(r)) {
            *s += v as f64;
        }
    }
    sums
}

/// Relative Frobenius error `‖a − b‖_F / ‖b‖_F` (0 when both are zero).
pub fn relative_error(a: &[f32], b: &[f32]) -> f64 {
    let denom = frobenius_norm(b);
    if denom == 0.0 {
        if frobenius_norm(a) == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        frobenius_distance(a, b) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let mut rng = Rng::seed_from(8);
        let mut t = Tensor::randn(5, 9, 2.0, &mut rng);
        let orig = t.clone();
        softmax_rows_inplace(&mut t);
        for r in 0..t.rows() {
            let s: f32 = t.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            // argmax preserved
            let am_orig = orig
                .row(r)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            let am_new = t
                .row(r)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(am_orig, am_new);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let mut t = Tensor::from_vec(1, 3, vec![1000.0, 1001.0, 999.0]);
        softmax_rows_inplace(&mut t);
        assert!(t.all_finite());
        let s: f32 = t.as_slice().iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn silu_matches_finite_difference() {
        for &x in &[-3.0f32, -0.5, 0.0, 0.7, 2.5] {
            let h = 1e-3;
            let fd = (silu(x + h) - silu(x - h)) / (2.0 * h);
            assert!((silu_grad(x) - fd).abs() < 1e-3, "x = {x}");
        }
    }

    #[test]
    fn row_norm_reconstruction() {
        let mut rng = Rng::seed_from(12);
        let t = Tensor::randn(7, 13, 1.3, &mut rng);
        let rn = row_norms(&t);
        assert_eq!(rn.len(), 7);
        let recon = norm_from_row_norms(&rn);
        assert!((recon - t.frobenius_norm()).abs() < 1e-9);
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(relative_error(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        assert!(relative_error(&[1.0], &[0.0]).is_infinite());
        let e = relative_error(&[1.1, 2.0], &[1.0, 2.0]);
        assert!(e > 0.0 && e < 0.1);
    }

    #[test]
    fn dot_and_distance() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((frobenius_distance(&[0.0, 3.0], &[4.0, 3.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn column_sums_correct() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(column_sums(&t), vec![5.0, 7.0, 9.0]);
    }
}
