//! The cache-blocked GEMM engine behind both the dense and the packed
//! kernels.
//!
//! One implementation serves all three orientations and all four operand
//! combinations (dense×dense through packed×packed): operands are
//! [`QOperandRef`]s. The B-side tile cache is materialized **once per
//! GEMM** and shared read-only by every row chunk; each chunk's A block is
//! borrowed in place (dense, row-major) or decoded **once per block sweep**
//! into reusable per-worker scratch (the old `qgemm_nt` panel loop
//! re-decoded every packed A row ⌈n/32⌉ times). Because the dense and
//! packed kernels literally share this code, the 0-ULP packed-vs-dense
//! identity holds by construction.
//!
//! Every orientation reduces to the same tile kernel: an `mb×k` row-major
//! A block times a `k×nb` k-major B tile, accumulated into an `mb×nb`
//! output tile as rank-1 updates — the vectorizable form (the naive
//! dot-product `nt` kernel was a serial FMA latency chain; rewriting it as
//! rank-1 updates over a transposed B tile is the single largest win in
//! this engine). Two tile-kernel implementations exist behind one
//! dispatcher: the portable scalar kernel in [`scalar`] (always compiled,
//! always the reference) and the explicit SIMD kernels in `simd_x86` /
//! `simd_neon`, selected at runtime by [`simd`] when the `simd` cargo
//! feature is on and the CPU supports them.
//!
//! # The accumulation-order constraint
//!
//! Every output element is accumulated **serially over `k`, ascending, in a
//! single f32 accumulator** — terms are added one at a time (`acc += a0·b0;
//! acc += a1·b1; …`), never as a fused `a0·b0 + a1·b1` tree. Blocking over
//! output tiles only reorders *which elements* are computed when, never the
//! order of additions within one element, so any M×N tiling is bit-exact
//! with any other (and with the serial kernel) at every thread count.
//! Splitting `k` across tasks or summing it through trees/SIMD horizontal
//! adds would break both the packed-vs-dense identity and cross-split
//! determinism.
//!
//! The SIMD kernels obey the same rule by vectorizing **across output
//! elements only**: each lane owns one output column's accumulator and the
//! `k` loop stays serial inside every lane, with a plain multiply followed
//! by a plain add per term (no FMA — a fused multiply-add skips the
//! intermediate rounding and would diverge from the scalar kernel by an
//! ULP). Lane `j` of the vector performs exactly the scalar kernel's
//! operation sequence for element `(i, j0 + j)`, so SIMD-vs-scalar equality
//! is 0 ULP lane-by-lane (property-tested in `tests/simd_scalar.rs`).

use crate::matmul::{for_each_row_chunk, thread_count};
use crate::packed::{prep, QOperandRef};
use crate::pool::{self, AlignedVec};
use crate::Tensor;
use std::cell::RefCell;

mod scalar;
pub mod simd;
#[cfg(all(feature = "simd", target_arch = "aarch64"))]
mod simd_neon;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd_x86;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd_x86_512;

/// Output rows per block (bounds A-side scratch to `MC × k` floats).
const MC: usize = 64;
/// Output columns per tile: bounds B-side scratch to `NC × k` floats and
/// keeps a 64×64 f32 output tile (16 KiB) L1-resident.
const NC: usize = 64;

/// What happens to each output element at tile-store time.
///
/// `Bf16` folds the round-to-nearest-even BF16 rounding of
/// [`crate::bf16::round`] into the final store of the tile kernel instead
/// of a second pass over the output. Each element is rounded exactly once,
/// after its full `k` accumulation (the engine calls the tile kernel once
/// per output tile with the whole `k` extent), so the fused store is
/// bit-identical to `Round::Keep` followed by
/// [`crate::bf16::round_slice`].
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Round {
    /// Store the raw f32 accumulators.
    Keep,
    /// Round every stored element to BF16 (kept in f32 storage).
    Bf16,
}

thread_local! {
    /// Per-worker scratch, reused across GEMM calls for the lifetime of the
    /// pool worker (or calling thread): A block, B tile (cache-line aligned
    /// for SIMD tile-row streaming), and a row staging buffer for
    /// transposes.
    static SCRATCH: RefCell<(Vec<f32>, AlignedVec, Vec<f32>)> =
        const { RefCell::new((Vec::new(), AlignedVec::new(), Vec::new())) };
}

fn with_scratch<R>(f: impl FnOnce(&mut Vec<f32>, &mut AlignedVec, &mut Vec<f32>) -> R) -> R {
    SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        let (a, b, r) = &mut *s;
        f(a, b, r)
    })
}

/// The shared tile kernel: `C[i0.., j0..] += Ablock · Btile` where `ablock`
/// is `mb×k` row-major, `btile` is `k×nb` k-major, and `chunk` holds the
/// caller's output rows (`row0` = first tile row's index within the chunk,
/// `n` = full output row stride). Terms are added one at a time, `k`
/// ascending, per element — see the module docs.
///
/// Dispatches to the active SIMD backend, falling back to the scalar
/// kernel (plus a scalar rounding pass for [`Round::Bf16`] — the SIMD
/// kernels fold the rounding into the tile store instead).
#[allow(clippy::too_many_arguments)]
fn tile_kernel(
    round: Round,
    chunk: &mut [f32],
    n: usize,
    row0: usize,
    j0: usize,
    mb: usize,
    nb: usize,
    k: usize,
    ablock: &[f32],
    btile: &[f32],
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    match simd::active_backend() {
        // SAFETY: a vector backend is only ever selected after
        // `is_x86_feature_detected!` confirmed its instruction set.
        simd::Backend::Avx512 => {
            unsafe {
                match round {
                    Round::Keep => simd_x86_512::tile_kernel::<false>(
                        chunk, n, row0, j0, mb, nb, k, ablock, btile,
                    ),
                    Round::Bf16 => simd_x86_512::tile_kernel::<true>(
                        chunk, n, row0, j0, mb, nb, k, ablock, btile,
                    ),
                }
            }
            return;
        }
        simd::Backend::Avx2 => {
            unsafe {
                match round {
                    Round::Keep => {
                        simd_x86::tile_kernel::<false>(chunk, n, row0, j0, mb, nb, k, ablock, btile)
                    }
                    Round::Bf16 => {
                        simd_x86::tile_kernel::<true>(chunk, n, row0, j0, mb, nb, k, ablock, btile)
                    }
                }
            }
            return;
        }
        _ => {}
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    if simd::active_backend() == simd::Backend::Neon {
        // SAFETY: NEON is a baseline aarch64 feature.
        unsafe {
            match round {
                Round::Keep => {
                    simd_neon::tile_kernel::<false>(chunk, n, row0, j0, mb, nb, k, ablock, btile)
                }
                Round::Bf16 => {
                    simd_neon::tile_kernel::<true>(chunk, n, row0, j0, mb, nb, k, ablock, btile)
                }
            }
        }
        return;
    }
    scalar::tile_kernel(chunk, n, row0, j0, mb, nb, k, ablock, btile);
    if round == Round::Bf16 {
        scalar::round_tile(chunk, n, row0, j0, mb, nb);
    }
}

/// How the B operand's elements map onto the k-major `k×nb` tile.
#[derive(Clone, Copy)]
enum BSide {
    /// B is `K×N`: tile row `kk` is the column segment `[j0, j1)` of B row
    /// `kk` (`nn`/`tn` orientations).
    RowMajor,
    /// B is `N×K` (`nt` orientation): tile row `kk` gathers element `kk`
    /// of B rows `[j0, j1)` — built by transposing whole B rows through the
    /// staging buffer, each row touched once per tile.
    Transposed,
}

/// Largest B operand (in elements) whose tile cache is pre-materialized
/// once per GEMM and shared read-only by every row chunk. Beyond it (64 MiB
/// of tiles) workers fall back to building tiles per block sweep from their
/// own bounded scratch.
const B_CACHE_LIMIT: usize = 1 << 24;

/// Problems below this many multiply–accumulates take the small-GEMM fast
/// path: no parallelism decision, no shared B-tile cache, just one serial
/// block sweep from per-thread scratch. Queue-push + condvar dispatch and
/// the cache's allocate/zero/build pass are fixed costs that dominate tiny
/// GEMMs; the sweep itself is the same code either way, so the fast path is
/// bit-identical by construction (pinned in `tests/pool_determinism.rs`).
/// The cutoff sits well below the parallel threshold (2^20 MACs) and was
/// picked from the `small_gemm` sweep in `bench_gemm`, which times both
/// paths on shapes straddling the boundary.
pub const SMALL_GEMM_MACS: usize = 1 << 16;

/// Materializes the `k×nb` k-major B tile for columns `[j0, j1)` into
/// `tile` (length `k * nb`).
fn build_btile_into(
    b: &QOperandRef<'_>,
    side: BSide,
    k: usize,
    j0: usize,
    j1: usize,
    tile: &mut [f32],
    staging: &mut Vec<f32>,
) {
    let nb = j1 - j0;
    debug_assert_eq!(tile.len(), k * nb);
    match side {
        BSide::RowMajor => match b {
            QOperandRef::Dense(t) => {
                for (kk, dst) in tile.chunks_exact_mut(nb).enumerate() {
                    dst.copy_from_slice(&t.row(kk)[j0..j1]);
                }
            }
            QOperandRef::Packed(t) => {
                for (kk, dst) in tile.chunks_exact_mut(nb).enumerate() {
                    t.decode_row_range_into(kk, j0, j1, dst);
                }
            }
        },
        BSide::Transposed => {
            for j in j0..j1 {
                let row = match b {
                    QOperandRef::Dense(t) => t.row(j),
                    QOperandRef::Packed(t) => {
                        let buf = prep(staging, k);
                        t.decode_row_into(j, buf);
                        &*buf
                    }
                };
                for (kk, &v) in row.iter().enumerate() {
                    tile[kk * nb + (j - j0)] = v;
                }
            }
        }
    }
}

/// How the A operand's elements map onto the row-major `mb×k` A block.
#[derive(Clone, Copy)]
enum ASide {
    /// A is `M×K`: block rows are operand rows `[i0, i1)` (`nn`/`nt`).
    RowMajor,
    /// A is `K×M` (`tn` orientation): block row `i` gathers column `i0 + i`
    /// across all `k` operand rows.
    Transposed,
}

/// Materializes the `mb×k` row-major A block for output rows `[i0, i1)` —
/// a direct borrow for dense row-major operands, one decode (or transpose)
/// per block sweep otherwise.
fn build_ablock<'s>(
    a: &'s QOperandRef<'s>,
    side: ASide,
    k: usize,
    i0: usize,
    i1: usize,
    scratch: &'s mut Vec<f32>,
    staging: &mut Vec<f32>,
) -> &'s [f32] {
    let mb = i1 - i0;
    match side {
        ASide::RowMajor => a.rows_block(i0, i1, scratch),
        ASide::Transposed => {
            let block = prep(scratch, mb * k);
            for kk in 0..k {
                let seg = match a {
                    QOperandRef::Dense(t) => &t.row(kk)[i0..i1],
                    QOperandRef::Packed(t) => {
                        let buf = prep(staging, mb);
                        t.decode_row_range_into(kk, i0, i1, buf);
                        &*buf
                    }
                };
                for (i, &v) in seg.iter().enumerate() {
                    block[i * k + kk] = v;
                }
            }
            block
        }
    }
}

/// One chunk's block sweep: `MC×NC` output tiles over rows `[start, end)`
/// of the output, the A block materialized once per sweep, B tiles served
/// from the shared cache when present and built into per-thread scratch
/// otherwise. `chunk` holds exactly rows `[start, end)`. Both the generic
/// (pooled) path and the small-GEMM fast path run this exact code — that
/// shared body is what pins their bit-identity.
#[allow(clippy::too_many_arguments)]
fn sweep_rows(
    a: &QOperandRef<'_>,
    a_side: ASide,
    b: &QOperandRef<'_>,
    b_side: BSide,
    n: usize,
    k: usize,
    round: Round,
    bcache: Option<&[f32]>,
    start: usize,
    end: usize,
    chunk: &mut [f32],
) {
    // Hoisted so the tile loop pays the telemetry gate once per sweep, not
    // per tile (and nothing at all beyond this load when collection is off).
    let obs = snip_obs::enabled();
    with_scratch(|sa, sb, sr| {
        let mut i0 = start;
        while i0 < end {
            let i1 = (i0 + MC).min(end);
            let ablock = build_ablock(a, a_side, k, i0, i1, sa, sr);
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + NC).min(n);
                let btile: &[f32] = match bcache {
                    Some(cache) => {
                        if obs {
                            snip_obs::counter_add("gemm.btile.cache_hits", 1);
                        }
                        &cache[j0 * k..j1 * k]
                    }
                    None => {
                        if obs {
                            snip_obs::counter_add("gemm.btile.scratch_builds", 1);
                        }
                        let tile = sb.prep(k * (j1 - j0));
                        build_btile_into(b, b_side, k, j0, j1, tile, sr);
                        tile
                    }
                };
                tile_kernel(
                    round,
                    chunk,
                    n,
                    i0 - start,
                    j0,
                    i1 - i0,
                    j1 - j0,
                    k,
                    ablock,
                    btile,
                );
                j0 = j1;
            }
            i0 = i1;
        }
    });
}

/// The blocked driver shared by all three orientations: pre-materialize
/// the B-side tile cache (tiles are j-aligned, so one build serves every
/// row chunk — B-side decode/transpose work is a single pass over B
/// regardless of `m` or the chunk count), then row-chunk the output across
/// the pool, sweeping `MC×NC` output tiles per chunk with the A block
/// materialized once per sweep. Oversized B operands skip the shared cache
/// and build tiles per sweep from bounded per-worker scratch; tiny
/// problems skip the whole parallel apparatus (see [`SMALL_GEMM_MACS`]).
#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    a: &QOperandRef<'_>,
    a_side: ASide,
    b: &QOperandRef<'_>,
    b_side: BSide,
    round: Round,
    m: usize,
    n: usize,
    k: usize,
) -> Tensor {
    // Telemetry wrapper: one relaxed load when collection is off; when on,
    // count the call against the active backend and accumulate wall time
    // on the dispatching thread (`gemm.ns` backs `StepOutput::gemm_ns`).
    if !snip_obs::enabled() {
        return gemm_blocked_inner(a, a_side, b, b_side, round, m, n, k);
    }
    let dispatch = match simd::active_backend() {
        simd::Backend::Scalar => "gemm.dispatch.scalar",
        simd::Backend::Neon => "gemm.dispatch.neon",
        simd::Backend::Avx2 => "gemm.dispatch.avx2",
        simd::Backend::Avx512 => "gemm.dispatch.avx512",
    };
    snip_obs::counter_add("gemm.calls", 1);
    snip_obs::counter_add(dispatch, 1);
    let t0 = snip_obs::trace::now_ns();
    let c = gemm_blocked_inner(a, a_side, b, b_side, round, m, n, k);
    snip_obs::counter_add("gemm.ns", snip_obs::trace::now_ns().saturating_sub(t0));
    c
}

#[allow(clippy::too_many_arguments)]
fn gemm_blocked_inner(
    a: &QOperandRef<'_>,
    a_side: ASide,
    b: &QOperandRef<'_>,
    b_side: BSide,
    round: Round,
    m: usize,
    n: usize,
    k: usize,
) -> Tensor {
    let mut c = Tensor::zeros(m, n);
    if m == 0 {
        return c;
    }
    // Small-GEMM fast path. A forced split (`pool::with_threads`) still
    // takes the generic path so tests and benchmarks can pin/measure it.
    if m * n * k < SMALL_GEMM_MACS && pool::forced_threads().is_none() {
        sweep_rows(
            a,
            a_side,
            b,
            b_side,
            n,
            k,
            round,
            None,
            0,
            m,
            c.as_mut_slice(),
        );
        return c;
    }
    let parts = thread_count(m * n * k);
    // The shared cache only pays when some sweep will re-read a tile: more
    // than one i-block per chunk, or several chunks sharing B. A skinny
    // single-sweep product (e.g. a matvec) streams B straight through
    // per-worker scratch instead — same traffic as reading B once, no
    // up-front allocation.
    let reused = m > MC || (parts > 1 && m > 1);
    let bcache: Option<AlignedVec> = if reused && k * n > 0 && k * n <= B_CACHE_LIMIT {
        // Tiles are stored back to back: the tile starting at column `j0`
        // occupies `cache[j0 * k..j1 * k]` — disjoint slices, so when the
        // GEMM itself will run parallel the build fans out across the pool
        // too (one task per tile; tile contents depend only on position,
        // so the cache is identical at every split).
        let mut cache = AlignedVec::new();
        cache.prep(k * n);
        let n_tiles = n.div_ceil(NC);
        let build_tasks = if parts > 1 { n_tiles } else { 1 };
        struct SendPtr(*mut f32);
        unsafe impl Send for SendPtr {}
        unsafe impl Sync for SendPtr {}
        impl SendPtr {
            fn get(&self) -> *mut f32 {
                self.0
            }
        }
        let base = SendPtr(cache.as_mut_ptr());
        pool::run(build_tasks, &|ti| {
            let mut staging = Vec::new();
            let (t0, t1) = if build_tasks > 1 {
                (ti, ti + 1)
            } else {
                (0, n_tiles)
            };
            for t in t0..t1 {
                let j0 = t * NC;
                let j1 = (j0 + NC).min(n);
                // SAFETY: tile ranges [j0*k, j1*k) are disjoint across `t`,
                // lie within `cache`, and `cache` outlives the dispatch
                // (`pool::run` returns only after every task completed).
                let tile = unsafe {
                    std::slice::from_raw_parts_mut(base.get().add(j0 * k), (j1 - j0) * k)
                };
                build_btile_into(b, b_side, k, j0, j1, tile, &mut staging);
            }
        });
        if snip_obs::enabled() {
            snip_obs::counter_add("gemm.bcache.builds", 1);
        }
        Some(cache)
    } else {
        None
    };
    let btiles = bcache.as_ref().map(|cache| cache.as_slice());
    let cdata = c.as_mut_slice();
    for_each_row_chunk(m, parts, cdata, n, |start, end, chunk| {
        sweep_rows(a, a_side, b, b_side, n, k, round, btiles, start, end, chunk);
    });
    c
}

/// `C = A · B` (`A`: `M×K`, `B`: `K×N`). Inner dims must already be
/// validated by the public wrappers.
pub(crate) fn gemm_nn(a: &QOperandRef<'_>, b: &QOperandRef<'_>, round: Round) -> Tensor {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    debug_assert_eq!(k, kb);
    gemm_blocked(a, ASide::RowMajor, b, BSide::RowMajor, round, m, n, k)
}

/// `C = A · Bᵀ` (`A`: `M×K`, `B`: `N×K`).
pub(crate) fn gemm_nt(a: &QOperandRef<'_>, b: &QOperandRef<'_>, round: Round) -> Tensor {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    debug_assert_eq!(k, kb);
    gemm_blocked(a, ASide::RowMajor, b, BSide::Transposed, round, m, n, k)
}

/// `C = Aᵀ · B` (`A`: `K×M`, `B`: `K×N`).
pub(crate) fn gemm_tn(a: &QOperandRef<'_>, b: &QOperandRef<'_>, round: Round) -> Tensor {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    debug_assert_eq!(k, kb);
    gemm_blocked(a, ASide::Transposed, b, BSide::RowMajor, round, m, n, k)
}
