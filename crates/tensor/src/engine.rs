//! The cache-blocked GEMM engine behind both the dense and the packed
//! kernels.
//!
//! One implementation serves all three orientations and all four operand
//! combinations (dense×dense through packed×packed): operands are
//! [`QOperandRef`]s. The B-side tile cache is materialized **once per
//! GEMM** and shared read-only by every row chunk; each chunk's A block is
//! borrowed in place (dense, row-major) or decoded **once per block sweep**
//! into reusable per-worker scratch (the old `qgemm_nt` panel loop
//! re-decoded every packed A row ⌈n/32⌉ times). Because the dense and
//! packed kernels literally share this code, the 0-ULP packed-vs-dense
//! identity holds by construction.
//!
//! Every orientation reduces to the same tile kernel: an `mb×k` row-major
//! A block times a `k×nb` k-major B tile, accumulated into an `mb×nb`
//! output tile as rank-1 updates — the vectorizable form (the naive
//! dot-product `nt` kernel was a serial FMA latency chain; rewriting it as
//! rank-1 updates over a transposed B tile is the single largest win in
//! this engine). The `k` loop is register-blocked 4-wide to amortize the
//! output tile's load/store traffic.
//!
//! # The accumulation-order constraint
//!
//! Every output element is accumulated **serially over `k`, ascending, in a
//! single f32 accumulator** — including inside the 4-way register block,
//! which adds its four products one at a time (`acc += a0·b0; acc += a1·b1;
//! …`), never as a fused `a0·b0 + a1·b1` tree. Blocking over output tiles
//! only reorders *which elements* are computed when, never the order of
//! additions within one element, so any M×N tiling is bit-exact with any
//! other (and with the serial kernel) at every thread count. Splitting `k`
//! across tasks or summing it through trees/SIMD horizontal adds would
//! break both the packed-vs-dense identity and cross-split determinism;
//! future SIMD work must vectorize across output elements (the `j` lanes
//! below), not within one element's `k` reduction.

use crate::matmul::{for_each_row_chunk, thread_count};
use crate::packed::{prep, QOperandRef};
use crate::pool;
use crate::Tensor;
use std::cell::RefCell;

/// Output rows per block (bounds A-side scratch to `MC × k` floats).
const MC: usize = 64;
/// Output columns per tile: bounds B-side scratch to `NC × k` floats and
/// keeps a 64×64 f32 output tile (16 KiB) L1-resident.
const NC: usize = 64;

thread_local! {
    /// Per-worker scratch, reused across GEMM calls for the lifetime of the
    /// pool worker (or calling thread): A block, B tile, and a row staging
    /// buffer for transposes.
    static SCRATCH: RefCell<(Vec<f32>, Vec<f32>, Vec<f32>)> =
        const { RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

fn with_scratch<R>(f: impl FnOnce(&mut Vec<f32>, &mut Vec<f32>, &mut Vec<f32>) -> R) -> R {
    SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        let (a, b, r) = &mut *s;
        f(a, b, r)
    })
}

/// The shared tile kernel: `C[i0.., j0..] += Ablock · Btile` where `ablock`
/// is `mb×k` row-major, `btile` is `k×nb` k-major, and `chunk` holds the
/// caller's output rows (`row0` = first tile row's index within the chunk,
/// `n` = full output row stride). Terms are added one at a time, `k`
/// ascending, per element — see the module docs.
#[allow(clippy::too_many_arguments)]
fn tile_kernel(
    chunk: &mut [f32],
    n: usize,
    row0: usize,
    j0: usize,
    mb: usize,
    nb: usize,
    k: usize,
    ablock: &[f32],
    btile: &[f32],
) {
    // Two output rows per pass: the four B-tile rows of each k-quad are
    // loaded once and feed both rows' updates, halving the dominant B-side
    // read traffic. Each row's elements still accumulate independently.
    let mut i = 0;
    while i + 2 <= mb {
        let arow0 = &ablock[i * k..(i + 1) * k];
        let arow1 = &ablock[(i + 1) * k..(i + 2) * k];
        let (head, tail) = chunk.split_at_mut((row0 + i + 1) * n);
        let crow0 = &mut head[(row0 + i) * n + j0..(row0 + i) * n + j0 + nb];
        let crow1 = &mut tail[j0..j0 + nb];
        let mut kk = 0;
        while kk + 4 <= k {
            let (a00, a01, a02, a03) = (arow0[kk], arow0[kk + 1], arow0[kk + 2], arow0[kk + 3]);
            let (a10, a11, a12, a13) = (arow1[kk], arow1[kk + 1], arow1[kk + 2], arow1[kk + 3]);
            let b0 = &btile[kk * nb..(kk + 1) * nb];
            let b1 = &btile[(kk + 1) * nb..(kk + 2) * nb];
            let b2 = &btile[(kk + 2) * nb..(kk + 3) * nb];
            let b3 = &btile[(kk + 3) * nb..(kk + 4) * nb];
            for (((((cv0, cv1), &v0), &v1), &v2), &v3) in crow0
                .iter_mut()
                .zip(crow1.iter_mut())
                .zip(b0)
                .zip(b1)
                .zip(b2)
                .zip(b3)
            {
                let mut acc0 = *cv0;
                acc0 += a00 * v0;
                acc0 += a01 * v1;
                acc0 += a02 * v2;
                acc0 += a03 * v3;
                *cv0 = acc0;
                let mut acc1 = *cv1;
                acc1 += a10 * v0;
                acc1 += a11 * v1;
                acc1 += a12 * v2;
                acc1 += a13 * v3;
                *cv1 = acc1;
            }
            kk += 4;
        }
        while kk < k {
            let a0 = arow0[kk];
            let a1 = arow1[kk];
            let b0 = &btile[kk * nb..(kk + 1) * nb];
            for ((cv0, cv1), &bv) in crow0.iter_mut().zip(crow1.iter_mut()).zip(b0) {
                *cv0 += a0 * bv;
                *cv1 += a1 * bv;
            }
            kk += 1;
        }
        i += 2;
    }
    if i < mb {
        let arow = &ablock[i * k..(i + 1) * k];
        let crow = &mut chunk[(row0 + i) * n + j0..(row0 + i) * n + j0 + nb];
        let mut kk = 0;
        while kk + 4 <= k {
            let (a0, a1, a2, a3) = (arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]);
            let b0 = &btile[kk * nb..(kk + 1) * nb];
            let b1 = &btile[(kk + 1) * nb..(kk + 2) * nb];
            let b2 = &btile[(kk + 2) * nb..(kk + 3) * nb];
            let b3 = &btile[(kk + 3) * nb..(kk + 4) * nb];
            for ((((cv, &v0), &v1), &v2), &v3) in crow.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
                let mut acc = *cv;
                acc += a0 * v0;
                acc += a1 * v1;
                acc += a2 * v2;
                acc += a3 * v3;
                *cv = acc;
            }
            kk += 4;
        }
        while kk < k {
            let a0 = arow[kk];
            let b0 = &btile[kk * nb..(kk + 1) * nb];
            for (cv, &bv) in crow.iter_mut().zip(b0) {
                *cv += a0 * bv;
            }
            kk += 1;
        }
    }
}

/// How the B operand's elements map onto the k-major `k×nb` tile.
#[derive(Clone, Copy)]
enum BSide {
    /// B is `K×N`: tile row `kk` is the column segment `[j0, j1)` of B row
    /// `kk` (`nn`/`tn` orientations).
    RowMajor,
    /// B is `N×K` (`nt` orientation): tile row `kk` gathers element `kk`
    /// of B rows `[j0, j1)` — built by transposing whole B rows through the
    /// staging buffer, each row touched once per tile.
    Transposed,
}

/// Largest B operand (in elements) whose tile cache is pre-materialized
/// once per GEMM and shared read-only by every row chunk. Beyond it (64 MiB
/// of tiles) workers fall back to building tiles per block sweep from their
/// own bounded scratch.
const B_CACHE_LIMIT: usize = 1 << 24;

/// Materializes the `k×nb` k-major B tile for columns `[j0, j1)` into
/// `tile` (length `k * nb`).
fn build_btile_into(
    b: &QOperandRef<'_>,
    side: BSide,
    k: usize,
    j0: usize,
    j1: usize,
    tile: &mut [f32],
    staging: &mut Vec<f32>,
) {
    let nb = j1 - j0;
    debug_assert_eq!(tile.len(), k * nb);
    match side {
        BSide::RowMajor => match b {
            QOperandRef::Dense(t) => {
                for (kk, dst) in tile.chunks_exact_mut(nb).enumerate() {
                    dst.copy_from_slice(&t.row(kk)[j0..j1]);
                }
            }
            QOperandRef::Packed(t) => {
                for (kk, dst) in tile.chunks_exact_mut(nb).enumerate() {
                    t.decode_row_range_into(kk, j0, j1, dst);
                }
            }
        },
        BSide::Transposed => {
            for j in j0..j1 {
                let row = match b {
                    QOperandRef::Dense(t) => t.row(j),
                    QOperandRef::Packed(t) => {
                        let buf = prep(staging, k);
                        t.decode_row_into(j, buf);
                        &*buf
                    }
                };
                for (kk, &v) in row.iter().enumerate() {
                    tile[kk * nb + (j - j0)] = v;
                }
            }
        }
    }
}

/// How the A operand's elements map onto the row-major `mb×k` A block.
#[derive(Clone, Copy)]
enum ASide {
    /// A is `M×K`: block rows are operand rows `[i0, i1)` (`nn`/`nt`).
    RowMajor,
    /// A is `K×M` (`tn` orientation): block row `i` gathers column `i0 + i`
    /// across all `k` operand rows.
    Transposed,
}

/// Materializes the `mb×k` row-major A block for output rows `[i0, i1)` —
/// a direct borrow for dense row-major operands, one decode (or transpose)
/// per block sweep otherwise.
fn build_ablock<'s>(
    a: &'s QOperandRef<'s>,
    side: ASide,
    k: usize,
    i0: usize,
    i1: usize,
    scratch: &'s mut Vec<f32>,
    staging: &mut Vec<f32>,
) -> &'s [f32] {
    let mb = i1 - i0;
    match side {
        ASide::RowMajor => a.rows_block(i0, i1, scratch),
        ASide::Transposed => {
            let block = prep(scratch, mb * k);
            for kk in 0..k {
                let seg = match a {
                    QOperandRef::Dense(t) => &t.row(kk)[i0..i1],
                    QOperandRef::Packed(t) => {
                        let buf = prep(staging, mb);
                        t.decode_row_range_into(kk, i0, i1, buf);
                        &*buf
                    }
                };
                for (i, &v) in seg.iter().enumerate() {
                    block[i * k + kk] = v;
                }
            }
            block
        }
    }
}

/// The blocked driver shared by all three orientations: pre-materialize
/// the B-side tile cache (tiles are j-aligned, so one build serves every
/// row chunk — B-side decode/transpose work is a single pass over B
/// regardless of `m` or the chunk count), then row-chunk the output across
/// the pool, sweeping `MC×NC` output tiles per chunk with the A block
/// materialized once per sweep. Oversized B operands skip the shared cache
/// and build tiles per sweep from bounded per-worker scratch.
fn gemm_blocked(
    a: &QOperandRef<'_>,
    a_side: ASide,
    b: &QOperandRef<'_>,
    b_side: BSide,
    m: usize,
    n: usize,
    k: usize,
) -> Tensor {
    let mut c = Tensor::zeros(m, n);
    if m == 0 {
        return c;
    }
    let parts = thread_count(m * n * k);
    // The shared cache only pays when some sweep will re-read a tile: more
    // than one i-block per chunk, or several chunks sharing B. A skinny
    // single-sweep product (e.g. a matvec) streams B straight through
    // per-worker scratch instead — same traffic as reading B once, no
    // up-front allocation.
    let reused = m > MC || (parts > 1 && m > 1);
    let bcache: Option<Vec<f32>> = if reused && k * n > 0 && k * n <= B_CACHE_LIMIT {
        // Tiles are stored back to back: the tile starting at column `j0`
        // occupies `cache[j0 * k..j1 * k]` — disjoint slices, so when the
        // GEMM itself will run parallel the build fans out across the pool
        // too (one task per tile; tile contents depend only on position,
        // so the cache is identical at every split).
        let mut cache = vec![0.0f32; k * n];
        let n_tiles = n.div_ceil(NC);
        let build_tasks = if parts > 1 { n_tiles } else { 1 };
        struct SendPtr(*mut f32);
        unsafe impl Send for SendPtr {}
        unsafe impl Sync for SendPtr {}
        impl SendPtr {
            fn get(&self) -> *mut f32 {
                self.0
            }
        }
        let base = SendPtr(cache.as_mut_ptr());
        pool::run(build_tasks, &|ti| {
            let mut staging = Vec::new();
            let (t0, t1) = if build_tasks > 1 {
                (ti, ti + 1)
            } else {
                (0, n_tiles)
            };
            for t in t0..t1 {
                let j0 = t * NC;
                let j1 = (j0 + NC).min(n);
                // SAFETY: tile ranges [j0*k, j1*k) are disjoint across `t`,
                // lie within `cache`, and `cache` outlives the dispatch
                // (`pool::run` returns only after every task completed).
                let tile = unsafe {
                    std::slice::from_raw_parts_mut(base.get().add(j0 * k), (j1 - j0) * k)
                };
                build_btile_into(b, b_side, k, j0, j1, tile, &mut staging);
            }
        });
        Some(cache)
    } else {
        None
    };
    let cdata = c.as_mut_slice();
    for_each_row_chunk(m, parts, cdata, n, |start, end, chunk| {
        with_scratch(|sa, sb, sr| {
            let mut i0 = start;
            while i0 < end {
                let i1 = (i0 + MC).min(end);
                let ablock = build_ablock(a, a_side, k, i0, i1, sa, sr);
                let mut j0 = 0;
                while j0 < n {
                    let j1 = (j0 + NC).min(n);
                    let btile: &[f32] = match &bcache {
                        Some(cache) => &cache[j0 * k..j1 * k],
                        None => {
                            let tile = prep(sb, k * (j1 - j0));
                            build_btile_into(b, b_side, k, j0, j1, tile, sr);
                            tile
                        }
                    };
                    tile_kernel(chunk, n, i0 - start, j0, i1 - i0, j1 - j0, k, ablock, btile);
                    j0 = j1;
                }
                i0 = i1;
            }
        });
    });
    c
}

/// `C = A · B` (`A`: `M×K`, `B`: `K×N`). Inner dims must already be
/// validated by the public wrappers.
pub(crate) fn gemm_nn(a: &QOperandRef<'_>, b: &QOperandRef<'_>) -> Tensor {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    debug_assert_eq!(k, kb);
    gemm_blocked(a, ASide::RowMajor, b, BSide::RowMajor, m, n, k)
}

/// `C = A · Bᵀ` (`A`: `M×K`, `B`: `N×K`).
pub(crate) fn gemm_nt(a: &QOperandRef<'_>, b: &QOperandRef<'_>) -> Tensor {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    debug_assert_eq!(k, kb);
    gemm_blocked(a, ASide::RowMajor, b, BSide::Transposed, m, n, k)
}

/// `C = Aᵀ · B` (`A`: `K×M`, `B`: `K×N`).
pub(crate) fn gemm_tn(a: &QOperandRef<'_>, b: &QOperandRef<'_>) -> Tensor {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    debug_assert_eq!(k, kb);
    gemm_blocked(a, ASide::Transposed, b, BSide::RowMajor, m, n, k)
}
