//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use snip_tensor::matmul::{matmul, matmul_nt, matmul_reference, matmul_tn};
use snip_tensor::ops::{frobenius_norm, norm_from_row_norms, row_norms, softmax_rows_inplace};
use snip_tensor::rng::Rng;
use snip_tensor::Tensor;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    (0u64..10_000).prop_map(move |seed| {
        let mut rng = Rng::seed_from(seed);
        Tensor::randn(rows, cols, 1.0, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GEMM is linear: (αA)·B == α(A·B).
    #[test]
    fn matmul_is_homogeneous(a in tensor_strategy(5, 7), b in tensor_strategy(7, 3), alpha in -2.0f32..2.0) {
        let mut a_scaled = a.clone();
        a_scaled.scale(alpha);
        let lhs = matmul(&a_scaled, &b);
        let mut rhs = matmul(&a, &b);
        rhs.scale(alpha);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// GEMM distributes over addition: (A+B)·C == A·C + B·C.
    #[test]
    fn matmul_distributes(a in tensor_strategy(4, 6), b in tensor_strategy(4, 6), c in tensor_strategy(6, 5)) {
        let lhs = matmul(&a.add(&b), &c);
        let rhs = matmul(&a, &c).add(&matmul(&b, &c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// The fast kernels agree with the naive reference in all orientations.
    #[test]
    fn kernels_match_reference(a in tensor_strategy(9, 11), b in tensor_strategy(11, 4)) {
        let fast = matmul(&a, &b);
        let slow = matmul_reference(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        let bt = b.transposed();
        let nt = matmul_nt(&a, &bt);
        for (x, y) in nt.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        let at = a.transposed();
        let tn = matmul_tn(&at, &b);
        for (x, y) in tn.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// ‖A + B‖ ≤ ‖A‖ + ‖B‖ (triangle inequality).
    #[test]
    fn norm_triangle_inequality(a in tensor_strategy(6, 6), b in tensor_strategy(6, 6)) {
        prop_assert!(a.add(&b).frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }

    /// Row-wise norms reconstruct the global norm (the paper's §6.3
    /// memory-saving formulation).
    #[test]
    fn row_norm_reconstruction(t in tensor_strategy(8, 5)) {
        let rn = row_norms(&t);
        prop_assert!((norm_from_row_norms(&rn) - t.frobenius_norm()).abs() < 1e-9);
    }

    /// Softmax output is invariant to adding a constant to a row.
    #[test]
    fn softmax_shift_invariance(t in tensor_strategy(3, 8), shift in -5.0f32..5.0) {
        let mut a = t.clone();
        softmax_rows_inplace(&mut a);
        let mut b = t.map(|x| x + shift);
        softmax_rows_inplace(&mut b);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    /// Transpose is an isometry for the Frobenius norm and an involution.
    #[test]
    fn transpose_properties(t in tensor_strategy(7, 3)) {
        prop_assert!((t.transposed().frobenius_norm() - t.frobenius_norm()).abs() < 1e-9);
        prop_assert_eq!(t.transposed().transposed(), t);
    }

    /// `frobenius_norm` on a slice matches the tensor method.
    #[test]
    fn slice_norm_matches(t in tensor_strategy(4, 9)) {
        prop_assert!((frobenius_norm(t.as_slice()) - t.frobenius_norm()).abs() < 1e-12);
    }

    /// axpy is consistent with scale+add.
    #[test]
    fn axpy_consistency(a in tensor_strategy(5, 5), b in tensor_strategy(5, 5), alpha in -3.0f32..3.0) {
        let mut lhs = a.clone();
        lhs.axpy(alpha, &b);
        let mut scaled = b.clone();
        scaled.scale(alpha);
        let rhs = a.add(&scaled);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }
}
