//! SIMD-vs-scalar identity: every kernel must return **bit-identical**
//! results whether the runtime-dispatched SIMD backend or the scalar
//! reference runs it. The scalar path is forced per-case with
//! [`snip_tensor::simd::with_forced_scalar`], which is what `SNIP_SIMD=0`
//! pins at startup but scoped to a closure.
//!
//! Covered here:
//!
//! * all six dense/packed kernels plus their fused-BF16 variants, over
//!   proptest-drawn shapes that exercise every lane tail (`n % 16`,
//!   `n % 8`, `n < 8`, row-block tails `m % 4`);
//! * fused BF16 output == two-pass (`Keep` kernel then `bf16::round_slice`);
//! * the FP4 pair-table decode and the FP8/INT8 LUT decode (`dequantize`),
//!   including ragged columns around the 16-wide pair strip;
//! * NaN and Inf operands — non-finite *structure* must match exactly
//!   (which elements are NaN, infinity signs, signed zeros). NaN payloads
//!   alone are exempt: LLVM leaves the operand order of a scalar float
//!   multiply unspecified, so the scalar reference itself does not pin
//!   which input's payload survives.
//!
//! When the crate is built without the `simd` feature (or the CPU lacks
//! AVX2/NEON) both sides dispatch to scalar and the suite degenerates to a
//! self-check; `simd::backend()` is printed once so CI logs show which case
//! ran.

use proptest::prelude::*;
use snip_tensor::rng::Rng;
use snip_tensor::{
    bf16, matmul, packed, simd, CodeWidth, GroupLayout, QOperandRef, QTensor, Tensor,
};

/// A 4-bit sign-magnitude codebook over {0, 0.5, …, 3.5} — same mirrored
/// layout the SIMD nibble lookup assumes (code `8 + i` = `-lut[i]`).
fn test_lut_u4() -> Vec<f32> {
    let mut lut = vec![0.0f32; 16];
    for i in 0..8 {
        lut[i] = i as f32 * 0.5;
        lut[8 + i] = -(i as f32 * 0.5);
    }
    lut
}

/// An 8-bit LUT with irregular values so gather lanes can't accidentally
/// agree: entry i is a signed, non-monotonic function of i.
fn test_lut_u8() -> Vec<f32> {
    (0..256)
        .map(|i| {
            let x = i as f32;
            (x - 128.0) * 0.03125 + (x * 0.7).sin() * 0.001
        })
        .collect()
}

fn random_qtensor(rows: usize, cols: usize, width: CodeWidth, seed: u64) -> QTensor {
    let mut rng = Rng::seed_from(seed);
    let layout = GroupLayout::Tile { nb: 5 };
    let groups = layout.group_count(rows, cols);
    let scales: Vec<f32> = (0..groups).map(|_| 0.25 + rng.next_f32()).collect();
    let (lut, codes) = match width {
        CodeWidth::U4 => (test_lut_u4(), 16u64),
        CodeWidth::U8 => (test_lut_u8(), 256u64),
    };
    let mut q = QTensor::new_zeroed(rows, cols, width, lut, layout, scales);
    for r in 0..rows {
        for c in 0..cols {
            q.set_code(r, c, (rng.next_u64() % codes) as u8);
        }
    }
    q
}

fn assert_bits_eq(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape");
    for (i, (a, b)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: element {i}: {a:?} ({:#010x}) vs {b:?} ({:#010x})",
            a.to_bits(),
            b.to_bits()
        );
    }
}

/// Runs all twelve kernels (six orientations × Keep/BF16) plus both decode
/// widths with the dispatched backend and again under `with_forced_scalar`,
/// asserting 0-ULP equality pairwise.
fn check_simd_matches_scalar(m: usize, k: usize, n: usize, seed: u64) {
    let mut rng = Rng::seed_from(seed);
    let a = Tensor::randn(m, k, 1.0, &mut rng);
    let b = Tensor::randn(k, n, 1.0, &mut rng);
    let bt = Tensor::randn(n, k, 1.0, &mut rng);
    let at = Tensor::randn(k, m, 1.0, &mut rng);
    let qa = random_qtensor(m, k, CodeWidth::U4, seed ^ 1);
    let qb = random_qtensor(k, n, CodeWidth::U4, seed ^ 2);
    let q8 = random_qtensor(m, n.max(1), CodeWidth::U8, seed ^ 5);

    let run = || {
        (
            matmul::matmul(&a, &b),
            matmul::matmul_nt(&a, &bt),
            matmul::matmul_tn(&at, &b),
            matmul::matmul_bf16(&a, &b),
            matmul::matmul_nt_bf16(&a, &bt),
            matmul::matmul_tn_bf16(&at, &b),
            packed::qgemm(QOperandRef::from(&qa), QOperandRef::from(&qb)),
            packed::qgemm_bf16(QOperandRef::from(&qa), QOperandRef::from(&qb)),
            qa.dequantize(),
            q8.dequantize(),
        )
    };

    let dispatched = run();
    let scalar = simd::with_forced_scalar(run);

    let what = |name: &str| format!("{name}, {m}x{k}x{n} ({})", simd::backend());
    assert_bits_eq(&dispatched.0, &scalar.0, &what("matmul"));
    assert_bits_eq(&dispatched.1, &scalar.1, &what("matmul_nt"));
    assert_bits_eq(&dispatched.2, &scalar.2, &what("matmul_tn"));
    assert_bits_eq(&dispatched.3, &scalar.3, &what("matmul_bf16"));
    assert_bits_eq(&dispatched.4, &scalar.4, &what("matmul_nt_bf16"));
    assert_bits_eq(&dispatched.5, &scalar.5, &what("matmul_tn_bf16"));
    assert_bits_eq(&dispatched.6, &scalar.6, &what("qgemm"));
    assert_bits_eq(&dispatched.7, &scalar.7, &what("qgemm_bf16"));
    assert_bits_eq(&dispatched.8, &scalar.8, &what("dequantize u4"));
    assert_bits_eq(&dispatched.9, &scalar.9, &what("dequantize u8"));

    // Fused BF16 must equal the two-pass form (Keep kernel, then a
    // standalone rounding sweep) on BOTH backends.
    let mut two_pass = dispatched.0.clone();
    bf16::round_slice(two_pass.as_mut_slice());
    assert_bits_eq(&dispatched.3, &two_pass, &what("fused vs two-pass bf16"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn simd_and_scalar_agree_to_the_bit(
        m in 1usize..24,
        k in 1usize..40,
        n in 1usize..48,
        seed in 0u64..1_000_000,
    ) {
        check_simd_matches_scalar(m, k, n, seed);
    }
}

/// Fixed shapes chosen to hit every strip tail in the x86 kernel: the
/// 16-wide double strip, the 8-wide strip, the scalar column tail, and the
/// 4/2/1-row blocks — plus widths below one SIMD lane.
#[test]
fn lane_tail_shapes_agree() {
    eprintln!(
        "simd backend: {} (compiled: {}, lanes: {})",
        simd::backend(),
        simd::compiled(),
        simd::lane_width()
    );
    for &(m, k, n) in &[
        (1, 1, 1),
        (1, 3, 7),   // below one lane
        (2, 5, 8),   // exactly one lane
        (3, 5, 9),   // one lane + scalar tail
        (4, 7, 15),  // 8-strip + 7 tail
        (5, 7, 16),  // exactly the double strip
        (6, 9, 17),  // double strip + 1
        (7, 9, 31),  // double strip + 8-strip + 7
        (9, 16, 33), // row blocks 4+4+1
        (11, 13, 40),
    ] {
        check_simd_matches_scalar(m, k, n, 0xBEEF ^ ((m * 971 + k * 31 + n) as u64));
    }
}

/// Bit equality except that two NaNs (any payload, any sign) match: the
/// payload surviving a NaN*NaN multiply is unspecified even between two
/// scalar builds, so only NaN-ness is contractual. Everything else —
/// numeric values, infinity signs, signed zeros — must be exact.
fn assert_bits_eq_modulo_nan(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape");
    for (i, (a, b)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        if a.is_nan() && b.is_nan() {
            continue;
        }
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: element {i}: {a:?} vs {b:?}"
        );
    }
}

/// NaN and Inf operands: the SIMD kernels must propagate non-finite values
/// structurally as the scalar kernels do — same elements NaN, same
/// infinity and zero signs (payloads exempt, see above).
#[test]
fn non_finite_operands_propagate_identically() {
    let mut rng = Rng::seed_from(77);
    for (m, k, n) in [(3, 6, 17), (5, 9, 33)] {
        let mut a = Tensor::randn(m, k, 1.0, &mut rng);
        let mut b = Tensor::randn(k, n, 1.0, &mut rng);
        // Sprinkle NaNs with distinct payloads, infinities, and zeros.
        let specials = [
            f32::from_bits(0x7FC1_2345),
            f32::from_bits(0xFFC0_0001),
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.0,
            -0.0,
        ];
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 5 == 0 {
                *v = specials[i % specials.len()];
            }
        }
        for (i, v) in b.as_mut_slice().iter_mut().enumerate() {
            if i % 7 == 0 {
                *v = specials[(i + 3) % specials.len()];
            }
        }
        let run = || (matmul::matmul(&a, &b), matmul::matmul_bf16(&a, &b));
        let dispatched = run();
        let scalar = simd::with_forced_scalar(run);
        assert_bits_eq_modulo_nan(&dispatched.0, &scalar.0, "matmul with non-finite");
        assert_bits_eq_modulo_nan(&dispatched.1, &scalar.1, "matmul_bf16 with non-finite");
    }
}

/// Decode raggedness: column ranges that start/end off the pair-strip
/// boundary, odd widths (trailing nibble), and runs shorter than one lane.
#[test]
fn decode_tails_agree() {
    for &(rows, cols) in &[(1, 1), (2, 3), (3, 15), (4, 16), (5, 17), (3, 37), (2, 63)] {
        let q4 = random_qtensor(rows, cols, CodeWidth::U4, 0xD4 ^ (cols as u64));
        let q8 = random_qtensor(rows, cols, CodeWidth::U8, 0xD8 ^ (cols as u64));
        let d4 = q4.dequantize();
        let d8 = q8.dequantize();
        let (s4, s8) = simd::with_forced_scalar(|| (q4.dequantize(), q8.dequantize()));
        assert_bits_eq(&d4, &s4, &format!("u4 decode {rows}x{cols}"));
        assert_bits_eq(&d8, &s8, &format!("u8 decode {rows}x{cols}"));
    }
}
