//! Backend identity: every kernel must return **bit-identical** results on
//! **every compiled backend tier** — scalar, AVX2/NEON, AVX-512 — and under
//! plain runtime dispatch. Each tier is pinned per-case with
//! [`snip_tensor::simd::with_forced_backend`] (whose `Scalar` case is what
//! `SNIP_SIMD=0` pins at startup, and whose tier caps are what
//! `SNIP_SIMD=avx2` pins, but scoped to a closure); the scalar run is the
//! reference every other tier is compared against.
//!
//! Covered here:
//!
//! * all twelve GEMM kernels (six orientations × Keep/fused-BF16), over
//!   proptest-drawn shapes that exercise every lane tail (`n % 16` for the
//!   AVX-512 masked tail, `n % 8`, `n < 8`, row-block tails `m % 4`);
//! * fused BF16 output == two-pass (`Keep` kernel then `bf16::round_slice`);
//! * the FP4 pair-table decode and the FP8/INT8 LUT decode (`dequantize`),
//!   including ragged columns around the 32-wide AVX-512 pair strip;
//! * NaN and Inf operands — non-finite *structure* must match exactly
//!   (which elements are NaN, infinity signs, signed zeros). NaN payloads
//!   alone are exempt: LLVM leaves the operand order of a scalar float
//!   multiply unspecified, so the scalar reference itself does not pin
//!   which input's payload survives.
//!
//! The sweep domain is [`simd::available_backends`], so on an AVX2-only
//! machine the AVX-512 leg simply isn't present, and without the `simd`
//! feature the suite degenerates to a scalar self-check; the backend list
//! is printed once so CI logs show which case ran.

use proptest::prelude::*;
use snip_tensor::rng::Rng;
use snip_tensor::{
    bf16, matmul, packed, simd, CodeWidth, GroupLayout, QOperandRef, QTensor, Tensor,
};

/// A 4-bit sign-magnitude codebook over {0, 0.5, …, 3.5} — same mirrored
/// layout the SIMD nibble lookup assumes (code `8 + i` = `-lut[i]`).
fn test_lut_u4() -> Vec<f32> {
    let mut lut = vec![0.0f32; 16];
    for i in 0..8 {
        lut[i] = i as f32 * 0.5;
        lut[8 + i] = -(i as f32 * 0.5);
    }
    lut
}

/// An 8-bit LUT with irregular values so gather lanes can't accidentally
/// agree: entry i is a signed, non-monotonic function of i.
fn test_lut_u8() -> Vec<f32> {
    (0..256)
        .map(|i| {
            let x = i as f32;
            (x - 128.0) * 0.03125 + (x * 0.7).sin() * 0.001
        })
        .collect()
}

fn random_qtensor(rows: usize, cols: usize, width: CodeWidth, seed: u64) -> QTensor {
    let mut rng = Rng::seed_from(seed);
    let layout = GroupLayout::Tile { nb: 5 };
    let groups = layout.group_count(rows, cols);
    let scales: Vec<f32> = (0..groups).map(|_| 0.25 + rng.next_f32()).collect();
    let (lut, codes) = match width {
        CodeWidth::U4 => (test_lut_u4(), 16u64),
        CodeWidth::U8 => (test_lut_u8(), 256u64),
    };
    let mut q = QTensor::new_zeroed(rows, cols, width, lut, layout, scales);
    for r in 0..rows {
        for c in 0..cols {
            q.set_code(r, c, (rng.next_u64() % codes) as u8);
        }
    }
    q
}

fn assert_bits_eq(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape");
    for (i, (a, b)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: element {i}: {a:?} ({:#010x}) vs {b:?} ({:#010x})",
            a.to_bits(),
            b.to_bits()
        );
    }
}

/// Runs all twelve GEMM kernels (six orientations × Keep/BF16) plus both
/// decode widths under a forced-scalar reference run, then once per
/// non-scalar backend tier (and once under plain dispatch), asserting
/// 0-ULP equality against the reference each time.
fn check_simd_matches_scalar(m: usize, k: usize, n: usize, seed: u64) {
    let mut rng = Rng::seed_from(seed);
    let a = Tensor::randn(m, k, 1.0, &mut rng);
    let b = Tensor::randn(k, n, 1.0, &mut rng);
    let bt = Tensor::randn(n, k, 1.0, &mut rng);
    let at = Tensor::randn(k, m, 1.0, &mut rng);
    let qa = random_qtensor(m, k, CodeWidth::U4, seed ^ 1);
    let qb = random_qtensor(k, n, CodeWidth::U4, seed ^ 2);
    let qbt = random_qtensor(n, k, CodeWidth::U4, seed ^ 3);
    let qat = random_qtensor(k, m, CodeWidth::U4, seed ^ 4);
    let q8 = random_qtensor(m, n.max(1), CodeWidth::U8, seed ^ 5);

    let run = || -> Vec<(&'static str, Tensor)> {
        vec![
            ("matmul", matmul::matmul(&a, &b)),
            ("matmul_nt", matmul::matmul_nt(&a, &bt)),
            ("matmul_tn", matmul::matmul_tn(&at, &b)),
            ("matmul_bf16", matmul::matmul_bf16(&a, &b)),
            ("matmul_nt_bf16", matmul::matmul_nt_bf16(&a, &bt)),
            ("matmul_tn_bf16", matmul::matmul_tn_bf16(&at, &b)),
            (
                "qgemm",
                packed::qgemm(QOperandRef::from(&qa), QOperandRef::from(&qb)),
            ),
            (
                "qgemm_nt",
                packed::qgemm_nt(QOperandRef::from(&qa), QOperandRef::from(&qbt)),
            ),
            (
                "qgemm_tn",
                packed::qgemm_tn(QOperandRef::from(&qat), QOperandRef::from(&qb)),
            ),
            (
                "qgemm_bf16",
                packed::qgemm_bf16(QOperandRef::from(&qa), QOperandRef::from(&qb)),
            ),
            (
                "qgemm_nt_bf16",
                packed::qgemm_nt_bf16(QOperandRef::from(&qa), QOperandRef::from(&qbt)),
            ),
            (
                "qgemm_tn_bf16",
                packed::qgemm_tn_bf16(QOperandRef::from(&qat), QOperandRef::from(&qb)),
            ),
            ("dequantize u4", qa.dequantize()),
            ("dequantize u8", q8.dequantize()),
        ]
    };

    let scalar = simd::with_forced_scalar(run);
    let mut variants: Vec<(String, Vec<(&'static str, Tensor)>)> = simd::available_backends()
        .into_iter()
        .filter(|bk| *bk != simd::Backend::Scalar)
        .map(|bk| {
            (
                format!("forced {}", bk.name()),
                simd::with_forced_backend(bk, run),
            )
        })
        .collect();
    variants.push((format!("dispatched {}", simd::backend()), run()));

    for (variant, results) in &variants {
        for ((name, got), (_, want)) in results.iter().zip(&scalar) {
            assert_bits_eq(got, want, &format!("{name}, {m}x{k}x{n} ({variant})"));
        }
        // Fused BF16 must equal the two-pass form (Keep kernel, then a
        // standalone rounding sweep) on EVERY backend.
        let mut two_pass = results[0].1.clone();
        bf16::round_slice(two_pass.as_mut_slice());
        assert_bits_eq(
            &results[3].1,
            &two_pass,
            &format!("fused vs two-pass bf16, {m}x{k}x{n} ({variant})"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn simd_and_scalar_agree_to_the_bit(
        m in 1usize..24,
        k in 1usize..40,
        n in 1usize..48,
        seed in 0u64..1_000_000,
    ) {
        check_simd_matches_scalar(m, k, n, seed);
    }
}

/// Fixed shapes chosen to hit every strip tail in every x86 kernel tier:
/// the AVX2 16-wide double strip, 8-wide strip and scalar column tail, the
/// AVX-512 32-wide double strip, 16-wide strip and every masked-tail width
/// class (`n % 16` ∈ {1, 7, 15}), and the 4/2/1-row blocks — plus widths
/// below one SIMD lane at each tier.
#[test]
fn lane_tail_shapes_agree() {
    eprintln!(
        "simd backend: {} (compiled: {}, lanes: {}, available: {:?})",
        simd::backend(),
        simd::compiled(),
        simd::lane_width(),
        simd::available_backends()
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
    );
    for &(m, k, n) in &[
        (1, 1, 1),
        (1, 3, 7),   // below one AVX2 lane
        (2, 5, 8),   // exactly one AVX2 lane; 512 masked tail of 8
        (3, 5, 9),   // one AVX2 lane + tail; 512 masked tail of 9
        (4, 7, 15),  // AVX2 8-strip + 7; 512 masked tail of 15 (full mask - 1)
        (5, 7, 16),  // exactly the AVX2 double strip / one 512 register
        (6, 9, 17),  // 512 16-strip + masked tail of 1
        (7, 9, 31),  // AVX2 double + 8 + 7; 512 16-strip + masked 15
        (9, 16, 32), // exactly the 512 double strip; row blocks 4+4+1
        (3, 8, 33),  // 512 double strip + masked tail of 1
        (5, 10, 47), // 512 double strip + masked tail of 15
        (11, 13, 40),
        (2, 21, 64), // two 512 double strips, no tail
        (4, 6, 71),  // 64 + masked tail of 7
    ] {
        check_simd_matches_scalar(m, k, n, 0xBEEF ^ ((m * 971 + k * 31 + n) as u64));
    }
}

/// Bit equality except that two NaNs (any payload, any sign) match: the
/// payload surviving a NaN*NaN multiply is unspecified even between two
/// scalar builds, so only NaN-ness is contractual. Everything else —
/// numeric values, infinity signs, signed zeros — must be exact.
fn assert_bits_eq_modulo_nan(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape");
    for (i, (a, b)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        if a.is_nan() && b.is_nan() {
            continue;
        }
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: element {i}: {a:?} vs {b:?}"
        );
    }
}

/// NaN and Inf operands: every vector backend must propagate non-finite
/// values structurally as the scalar kernels do — same elements NaN, same
/// infinity and zero signs (payloads exempt, see above). Shapes include an
/// AVX-512 masked tail so disabled lanes can't leak into active ones.
#[test]
fn non_finite_operands_propagate_identically() {
    let mut rng = Rng::seed_from(77);
    for (m, k, n) in [(3, 6, 17), (5, 9, 33), (4, 7, 45)] {
        let mut a = Tensor::randn(m, k, 1.0, &mut rng);
        let mut b = Tensor::randn(k, n, 1.0, &mut rng);
        // Sprinkle NaNs with distinct payloads, infinities, and zeros.
        let specials = [
            f32::from_bits(0x7FC1_2345),
            f32::from_bits(0xFFC0_0001),
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.0,
            -0.0,
        ];
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 5 == 0 {
                *v = specials[i % specials.len()];
            }
        }
        for (i, v) in b.as_mut_slice().iter_mut().enumerate() {
            if i % 7 == 0 {
                *v = specials[(i + 3) % specials.len()];
            }
        }
        let run = || (matmul::matmul(&a, &b), matmul::matmul_bf16(&a, &b));
        let scalar = simd::with_forced_scalar(run);
        for bk in simd::available_backends() {
            let got = simd::with_forced_backend(bk, run);
            let what = |name: &str| format!("{name} with non-finite ({})", bk.name());
            assert_bits_eq_modulo_nan(&got.0, &scalar.0, &what("matmul"));
            assert_bits_eq_modulo_nan(&got.1, &scalar.1, &what("matmul_bf16"));
        }
    }
}

/// Decode raggedness on every backend tier: column ranges that start/end
/// off the pair-strip boundary, odd widths (trailing nibble), runs shorter
/// than one lane, and runs straddling the AVX-512 32-element pair strip.
#[test]
fn decode_tails_agree() {
    for &(rows, cols) in &[
        (1, 1),
        (2, 3),
        (3, 15),
        (4, 16),
        (5, 17),
        (3, 37),
        (2, 63),
        (2, 64),
        (3, 65),
        (1, 95),
    ] {
        let q4 = random_qtensor(rows, cols, CodeWidth::U4, 0xD4 ^ (cols as u64));
        let q8 = random_qtensor(rows, cols, CodeWidth::U8, 0xD8 ^ (cols as u64));
        let (s4, s8) = simd::with_forced_scalar(|| (q4.dequantize(), q8.dequantize()));
        for bk in simd::available_backends() {
            let (d4, d8) = simd::with_forced_backend(bk, || (q4.dequantize(), q8.dequantize()));
            assert_bits_eq(
                &d4,
                &s4,
                &format!("u4 decode {rows}x{cols} ({})", bk.name()),
            );
            assert_bits_eq(
                &d8,
                &s8,
                &format!("u8 decode {rows}x{cols} ({})", bk.name()),
            );
        }
    }
}
