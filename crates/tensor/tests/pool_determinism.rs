//! Determinism of the pool-backed GEMM engine: all six kernels must return
//! **bit-identical** results for every task split — serial, 2-way, the full
//! pool size, and an oversubscribed split larger than the pool — including
//! ragged shapes whose row count does not divide evenly (leaving some
//! workers idle or short). The split is forced with
//! [`snip_tensor::pool::with_threads`], which is exactly what `SNIP_THREADS`
//! pins at pool init, but scoped per test case.
//!
//! The packed kernels are additionally checked against the dense kernels
//! over dequantized operands at every split (the 0-ULP identity must not
//! depend on chunk boundaries).

use proptest::prelude::*;
use snip_tensor::rng::Rng;
use snip_tensor::{matmul, pool, CodeWidth, GroupLayout, QOperandRef, QTensor, Tensor};

/// A 4-bit sign-magnitude test codebook over {0, 0.5, …, 3.5}.
fn test_lut_u4() -> Vec<f32> {
    let mut lut = vec![0.0f32; 16];
    for i in 0..8 {
        lut[i] = i as f32 * 0.5;
        lut[8 + i] = -(i as f32 * 0.5);
    }
    lut
}

fn random_qtensor(rows: usize, cols: usize, seed: u64) -> QTensor {
    let mut rng = Rng::seed_from(seed);
    let layout = GroupLayout::Tile { nb: 5 };
    let groups = layout.group_count(rows, cols);
    let scales: Vec<f32> = (0..groups).map(|_| 0.25 + rng.next_f32()).collect();
    let mut q = QTensor::new_zeroed(rows, cols, CodeWidth::U4, test_lut_u4(), layout, scales);
    for r in 0..rows {
        for c in 0..cols {
            q.set_code(r, c, (rng.next_u64() % 16) as u8);
        }
    }
    q
}

fn assert_bits_eq(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape");
    for (i, (a, b)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: element {i}: {a} vs {b}");
    }
}

/// The splits every kernel is checked at: serial, two-way, the pool size,
/// and more tasks than the pool has workers.
fn splits() -> Vec<usize> {
    let max = pool::size();
    vec![1, 2, max, max + 3]
}

fn check_all_kernels(m: usize, k: usize, n: usize, seed: u64) {
    let mut rng = Rng::seed_from(seed);
    let a = Tensor::randn(m, k, 1.0, &mut rng);
    let b = Tensor::randn(k, n, 1.0, &mut rng);
    let bt = Tensor::randn(n, k, 1.0, &mut rng);
    let at = Tensor::randn(k, m, 1.0, &mut rng);
    let qa = random_qtensor(m, k, seed ^ 1);
    let qb = random_qtensor(k, n, seed ^ 2);
    let qbt = random_qtensor(n, k, seed ^ 3);
    let qat = random_qtensor(k, m, seed ^ 4);
    let (da, db, dbt, dat) = (
        qa.dequantize(),
        qb.dequantize(),
        qbt.dequantize(),
        qat.dequantize(),
    );

    // Serial results are the reference for every split.
    let reference = pool::with_threads(1, || {
        (
            matmul::matmul(&a, &b),
            matmul::matmul_nt(&a, &bt),
            matmul::matmul_tn(&at, &b),
            snip_tensor::packed::qgemm(QOperandRef::from(&qa), QOperandRef::from(&qb)),
            snip_tensor::packed::qgemm_nt(QOperandRef::from(&qa), QOperandRef::from(&qbt)),
            snip_tensor::packed::qgemm_tn(QOperandRef::from(&qat), QOperandRef::from(&qb)),
        )
    });

    // The packed kernels must bit-match the dense kernels over the
    // dequantized operands, independent of split.
    assert_bits_eq(&reference.3, &matmul::matmul(&da, &db), "qgemm vs dense");
    assert_bits_eq(
        &reference.4,
        &matmul::matmul_nt(&da, &dbt),
        "qgemm_nt vs dense",
    );
    assert_bits_eq(
        &reference.5,
        &matmul::matmul_tn(&dat, &db),
        "qgemm_tn vs dense",
    );

    for split in splits() {
        let got = pool::with_threads(split, || {
            (
                matmul::matmul(&a, &b),
                matmul::matmul_nt(&a, &bt),
                matmul::matmul_tn(&at, &b),
                snip_tensor::packed::qgemm(QOperandRef::from(&qa), QOperandRef::from(&qb)),
                snip_tensor::packed::qgemm_nt(QOperandRef::from(&qa), QOperandRef::from(&qbt)),
                snip_tensor::packed::qgemm_tn(QOperandRef::from(&qat), QOperandRef::from(&qb)),
            )
        });
        let what = format!("split {split} of {m}x{k}x{n}");
        assert_bits_eq(&got.0, &reference.0, &format!("matmul, {what}"));
        assert_bits_eq(&got.1, &reference.1, &format!("matmul_nt, {what}"));
        assert_bits_eq(&got.2, &reference.2, &format!("matmul_tn, {what}"));
        assert_bits_eq(&got.3, &reference.3, &format!("qgemm, {what}"));
        assert_bits_eq(&got.4, &reference.4, &format!("qgemm_nt, {what}"));
        assert_bits_eq(&got.5, &reference.5, &format!("qgemm_tn, {what}"));

        // Parallel dequantize must also be split-invariant.
        let dq = pool::with_threads(split, || qa.dequantize());
        assert_bits_eq(&dq, &da, &format!("dequantize, {what}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn kernels_are_bit_identical_at_every_split(
        m in 1usize..40,
        k in 1usize..48,
        n in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        check_all_kernels(m, k, n, seed);
    }
}

/// Deliberately ragged fixed shapes: fewer rows than tasks (idle workers),
/// one row, prime sizes straddling block boundaries, and a shape large
/// enough to span several `MC`/`NC` blocks per chunk.
#[test]
fn ragged_and_blocky_shapes_are_split_invariant() {
    for &(m, k, n) in &[
        (1, 7, 9),
        (2, 1, 1),
        (3, 17, 130),
        (5, 40, 3),
        (67, 33, 129),
        (130, 96, 67),
    ] {
        check_all_kernels(m, k, n, 0xC0FFEE ^ ((m * 1000 + k * 10 + n) as u64));
    }
}

/// The small-GEMM fast path (work below `SMALL_GEMM_MACS` skips pool
/// dispatch and the shared B-tile cache) must be bit-identical to the
/// generic blocked path at the cutoff boundary. `with_threads` pins the
/// generic path (the fast path defers whenever a split is forced), so
/// default dispatch vs `with_threads(1)`/`with_threads(4)` compares the
/// two implementations directly. Shapes straddle the 2^16-MAC cutoff.
#[test]
fn small_gemm_fast_path_is_bit_identical_at_the_cutoff() {
    for &(m, k, n) in &[
        (64, 63, 16), // just under the cutoff: fast path
        (64, 64, 16), // exactly at the cutoff: generic path
        (64, 65, 16), // just over: generic path
        (1, 1, 1),
        (7, 11, 13),
        (40, 40, 40),
    ] {
        let seed = 0x5A11 ^ ((m * 7919 + k * 131 + n) as u64);
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::randn(m, k, 1.0, &mut rng);
        let b = Tensor::randn(k, n, 1.0, &mut rng);
        let qa = random_qtensor(m, k, seed ^ 1);
        let qb = random_qtensor(k, n, seed ^ 2);

        // Default dispatch: takes the fast path below the cutoff.
        let fast = (
            matmul::matmul(&a, &b),
            snip_tensor::packed::qgemm(QOperandRef::from(&qa), QOperandRef::from(&qb)),
        );
        for split in [1usize, 4] {
            let generic = pool::with_threads(split, || {
                (
                    matmul::matmul(&a, &b),
                    snip_tensor::packed::qgemm(QOperandRef::from(&qa), QOperandRef::from(&qb)),
                )
            });
            let what = format!("small-gemm {m}x{k}x{n} vs split {split}");
            assert_bits_eq(&fast.0, &generic.0, &format!("matmul, {what}"));
            assert_bits_eq(&fast.1, &generic.1, &format!("qgemm, {what}"));
        }
    }
}

/// The full split-invariance suite must also hold with every backend tier
/// pinned — determinism may not depend on which microkernel runs. The
/// forced backend propagates through `pool::run` to the workers serving
/// the region, so each leg here really does run its tier on every thread
/// of every split (pinned separately below).
#[test]
fn forced_backend_kernels_are_split_invariant() {
    for bk in snip_tensor::simd::available_backends() {
        snip_tensor::simd::with_forced_backend(bk, || {
            for &(m, k, n) in &[(3, 17, 130), (67, 33, 129)] {
                check_all_kernels(m, k, n, 0x5CA1A2 ^ ((m * 1000 + k * 10 + n) as u64));
            }
        });
    }
}

/// The forced backend must reach pool workers: a parallel region dispatched
/// under `with_forced_backend` runs that tier on whichever thread claims
/// each task. Observed directly via `simd::backend_kind` equality inside
/// the tasks would need crate internals, so this pins the observable
/// contract instead: a forced-scalar parallel GEMM equals the serial
/// forced-scalar GEMM bit-for-bit *and* the forced-backend results equal
/// each other across splits (already 0-ULP by the kernel contract — this
/// test exists to exercise the propagation machinery itself on a
/// many-task split).
#[test]
fn forced_backend_propagates_to_pool_workers() {
    let mut rng = Rng::seed_from(0xF0);
    let a = Tensor::randn(40, 24, 1.0, &mut rng);
    let b = Tensor::randn(24, 33, 1.0, &mut rng);
    for bk in snip_tensor::simd::available_backends() {
        let serial = snip_tensor::simd::with_forced_backend(bk, || {
            pool::with_threads(1, || matmul::matmul(&a, &b))
        });
        let parallel = snip_tensor::simd::with_forced_backend(bk, || {
            pool::with_threads(pool::size() + 3, || matmul::matmul(&a, &b))
        });
        assert_bits_eq(
            &parallel,
            &serial,
            &format!("forced {} across pool workers", bk.name()),
        );
    }
}

/// `SNIP_THREADS`-style splits wider than the row count collapse to
/// one-row chunks without panicking or changing results.
#[test]
fn oversubscribed_split_handles_tiny_problems() {
    let mut rng = Rng::seed_from(9);
    let a = Tensor::randn(2, 3, 1.0, &mut rng);
    let b = Tensor::randn(3, 2, 1.0, &mut rng);
    let want = pool::with_threads(1, || matmul::matmul(&a, &b));
    let got = pool::with_threads(64, || matmul::matmul(&a, &b));
    assert_bits_eq(&got, &want, "64-way split of 2x3x2");
}
