//! Satellite: cross-thread shard merge must be exact — counts sum with no
//! lost updates, histograms keep every sample, and shards of threads that
//! have already exited still contribute.

use snip_obs::registry::{counter_value, hist_snapshot, HIST_BUCKETS};

#[test]
fn counter_shards_merge_exactly_across_threads() {
    const NAME: &str = "test.merge.counter";
    const THREADS: u64 = 8;
    const INCREMENTS: u64 = 10_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..INCREMENTS {
                    // Mixed deltas so the expected total is not a trivial
                    // multiple that a dropped batch could still hit.
                    snip_obs::counter_add(NAME, 1 + (t + i) % 3);
                }
            })
        })
        .collect();
    let expected: u64 = (0..THREADS)
        .map(|t| (0..INCREMENTS).map(|i| 1 + (t + i) % 3).sum::<u64>())
        .sum();
    for h in handles {
        h.join().expect("incrementing thread");
    }
    // Every thread has exited; their shards must still be visible.
    assert_eq!(counter_value(NAME), expected);
}

#[test]
fn histogram_shards_merge_exactly_across_threads() {
    const NAME: &str = "test.merge.hist";
    const THREADS: u64 = 6;
    const SAMPLES: u64 = 5_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..SAMPLES {
                    // Spread samples over many buckets.
                    snip_obs::hist_record(NAME, (t * SAMPLES + i) % 100_000);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("recording thread");
    }
    let h = hist_snapshot(NAME).expect("recorded histogram");
    assert_eq!(h.count, THREADS * SAMPLES, "no lost samples");
    let expected_sum: u64 = (0..THREADS)
        .flat_map(|t| (0..SAMPLES).map(move |i| (t * SAMPLES + i) % 100_000))
        .sum();
    assert_eq!(h.sum, expected_sum, "no lost value mass");
    assert_eq!(h.buckets.len(), HIST_BUCKETS);
    assert_eq!(
        h.buckets.iter().sum::<u64>(),
        THREADS * SAMPLES,
        "bucket counts account for every sample"
    );
}

#[test]
fn quant_signal_records_merge_across_threads() {
    const KIND: &str = "test.merge.quantsig";
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                for _ in 0..1_000 {
                    snip_obs::quantsig::record(
                        KIND,
                        &snip_obs::quantsig::PackSignal {
                            elems: 10,
                            absmax: 0.5 + t as f32 * 0.25,
                            groups: 2,
                            saturated: 1,
                            clipped: 0,
                            abs_err_sum: 0.125,
                        },
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("recording thread");
    }
    let snap = snip_obs::quantsig::snapshot();
    let s = snap.get(KIND).expect("recorded kind");
    assert_eq!(s.tensors, 4_000);
    assert_eq!(s.elems, 40_000);
    assert_eq!(s.groups, 8_000);
    assert_eq!(s.saturated, 4_000);
    // Exact: 0.125 is a power of two, so the CAS-add sum has no rounding.
    assert_eq!(s.mean_abs_error, 4_000.0 * 0.125 / 40_000.0);
    assert_eq!(s.absmax, 0.5 + 3.0 * 0.25);
    assert_eq!(s.saturation_rate, 0.5);
}
