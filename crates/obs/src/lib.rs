//! # snip-obs
//!
//! Zero-overhead-when-off telemetry for the SNIP stack: a process-wide
//! metric registry ([`registry`]: counters, gauges, fixed-bucket
//! histograms aggregated from lock-free per-thread shards), RAII span
//! timing with Chrome trace-event export ([`trace`]), quantization-signal
//! accumulators for the adaptive-precision controller ([`quantsig`]), and
//! the per-run `RUN_REPORT.json` artifact plus schema validators
//! ([`report`]). Shared environment-variable parsing lives in [`env`](mod@env) and
//! is reused by `SNIP_SIMD` and `SNIP_THREADS` through `snip-tensor`.
//!
//! ## Activation
//!
//! Collection is off by default and env-gated through `SNIP_TRACE`,
//! parsed once per process exactly like `SNIP_SIMD`:
//!
//! | value | effect |
//! |---|---|
//! | unset, `0`, `off`, `false` | disabled (the default) |
//! | `1`, `on`, `true` | collect; artifacts go to `./snip_trace.json` + `./RUN_REPORT.json` |
//! | any path ending in `.json` | collect; trace to that path, report beside it |
//!
//! Anything else warns once to stderr with the accepted-value table and
//! leaves collection off. Instrumented hot paths check [`enabled`] first,
//! so **the disabled path costs a single relaxed atomic load** — no clock
//! read, no allocation, no lock.
//!
//! ## The zero-bit contract
//!
//! Telemetry observes; it never participates. Turning collection on or off
//! changes **zero bits** of any numeric result anywhere in the stack — the
//! engine's determinism suites (`pool_determinism`, `simd_scalar`, the
//! transport equivalence tests) pass identically under `SNIP_TRACE=1`, and
//! `crates/pipeline/tests/obs_zero_bit.rs` property-tests kernels,
//! quantizers and collectives with collection force-toggled both ways.
//! This is what makes the global [`set_enabled`] test hook safe.
//!
//! ## Worked example: a trace you can open in Perfetto
//!
//! ```no_run
//! // SNIP_TRACE=trace.json ./my_run   (or set_enabled(true) in-process)
//! {
//!     let _step = snip_obs::span("train_step");          // RAII: ends at scope exit
//!     snip_obs::counter_add("demo.widgets", 3);          // lock-free after first touch
//!     snip_obs::hist_record("demo.latency_ns", 1_234);   // power-of-two buckets
//! }
//! if let Ok(Some(artifacts)) = snip_obs::flush() {
//!     // artifacts.trace_path now holds {"traceEvents":[{"name":"train_step",
//!     // "ph":"X","ts":...,"dur":...,...}]} — drag it into https://ui.perfetto.dev
//!     // or chrome://tracing and the span appears on its thread's track.
//!     // artifacts.report_path holds RUN_REPORT.json with the counter, the
//!     // histogram, and every other metric the run recorded.
//!     println!("trace: {}", artifacts.trace_path.display());
//! }
//! ```
//!
//! ## Adding a metric
//!
//! 1. Pick a dotted `&'static str` name namespaced by crate
//!    (`"pool.queue_wait_ns"`, `"gemm.dispatch.avx2"`).
//! 2. At the recording site, gate on [`enabled`] and call
//!    [`counter_add`]/[`hist_record`]/[`gauge_set`] — or wrap the region in
//!    [`span`], which is self-gating.
//! 3. Nothing else: the metric appears in `RUN_REPORT.json` (and, for
//!    spans, the Chrome trace) automatically at the next [`flush`].

use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering::Relaxed};
use std::sync::OnceLock;

pub mod env;
pub mod quantsig;
pub mod registry;
pub mod report;
pub mod trace;

pub use registry::{
    counter_add, counter_value, gauge_set, hist_record, hist_snapshot, thread_counter_value,
};
pub use trace::{span, Span};

/// Accepted-value table for `SNIP_TRACE`, shown by the warn-once path.
pub const SNIP_TRACE_ACCEPTED: &str =
    "0|off|false (disabled), 1|on|true (trace to ./snip_trace.json), or a trace path ending in .json";

// 0 = not yet initialized, 1 = collection off, 2 = collection on.
static STATE: AtomicU8 = AtomicU8::new(0);

#[derive(Clone, Debug)]
struct TraceConfig {
    collect: bool,
    trace_path: Option<PathBuf>,
}

fn parse_trace(v: &str) -> Option<TraceConfig> {
    match v.to_ascii_lowercase().as_str() {
        "0" | "off" | "false" => Some(TraceConfig {
            collect: false,
            trace_path: None,
        }),
        "1" | "on" | "true" => Some(TraceConfig {
            collect: true,
            trace_path: Some(PathBuf::from("snip_trace.json")),
        }),
        lower if lower.ends_with(".json") => Some(TraceConfig {
            collect: true,
            // Keep the caller's spelling, not the lowercased probe.
            trace_path: Some(PathBuf::from(v)),
        }),
        _ => None,
    }
}

fn config() -> &'static TraceConfig {
    static CONFIG: OnceLock<TraceConfig> = OnceLock::new();
    CONFIG.get_or_init(|| {
        let cfg =
            env::read("SNIP_TRACE", SNIP_TRACE_ACCEPTED, parse_trace).unwrap_or(TraceConfig {
                collect: false,
                trace_path: None,
            });
        STATE.store(if cfg.collect { 2 } else { 1 }, Relaxed);
        cfg
    })
}

/// Whether telemetry collection is on. This is the hot-path gate: after the
/// first call it is exactly one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Relaxed) {
        2 => true,
        1 => false,
        _ => {
            config();
            STATE.load(Relaxed) == 2
        }
    }
}

/// Force collection on or off, returning the previous state. Safe at any
/// point because of the zero-bit contract (collection never changes
/// results); used by `comm_precision` to surface step timings without the
/// env var, and by the zero-bit property tests to A/B a single process.
pub fn set_enabled(on: bool) -> bool {
    let _ = config(); // pin env parsing so a later init cannot overwrite us
    STATE.swap(if on { 2 } else { 1 }, Relaxed) == 2
}

/// RAII guard from [`enabled_scope`]: restores the previous state on drop.
#[must_use = "the guard restores the previous state when dropped"]
pub struct EnabledGuard {
    prev: bool,
}

impl Drop for EnabledGuard {
    fn drop(&mut self) {
        set_enabled(self.prev);
    }
}

/// Scoped [`set_enabled`]: forces collection `on` until the guard drops.
pub fn enabled_scope(on: bool) -> EnabledGuard {
    EnabledGuard {
        prev: set_enabled(on),
    }
}

/// The trace file path configured through `SNIP_TRACE`, if any.
pub fn trace_path() -> Option<PathBuf> {
    config().trace_path.clone()
}

/// Paths written by [`flush`].
#[derive(Clone, Debug)]
pub struct Artifacts {
    /// The Chrome trace-event JSON file.
    pub trace_path: PathBuf,
    /// The `RUN_REPORT.json` beside it.
    pub report_path: PathBuf,
}

/// Writes the Chrome trace and `RUN_REPORT.json` to the paths configured
/// through `SNIP_TRACE`. Returns `Ok(None)` when the env var did not
/// request artifacts (collection off, or forced on programmatically).
/// Idempotent: each call rewrites both files from the full current state,
/// so end-of-run callers may flush more than once.
pub fn flush() -> std::io::Result<Option<Artifacts>> {
    let cfg = config();
    let Some(trace_path) = cfg.trace_path.clone().filter(|_| cfg.collect) else {
        return Ok(None);
    };
    let report_path = match trace_path.parent() {
        Some(dir) => dir.join("RUN_REPORT.json"),
        None => PathBuf::from("RUN_REPORT.json"),
    };
    std::fs::write(&trace_path, trace::chrome_trace_json())?;
    std::fs::write(&report_path, report::report_json())?;
    Ok(Some(Artifacts {
        trace_path,
        report_path,
    }))
}

/// Serializes unit tests that flip the global collection state against the
/// ones that assert on it (test threads share the process-wide flag).
#[cfg(test)]
pub(crate) fn test_state_lock() -> std::sync::MutexGuard<'static, ()> {
    static L: std::sync::Mutex<()> = std::sync::Mutex::new(());
    L.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_values_parse_as_documented() {
        for off in ["0", "off", "OFF", "false"] {
            let c = parse_trace(off).expect(off);
            assert!(!c.collect, "{off}");
        }
        for on in ["1", "on", "true", "True"] {
            let c = parse_trace(on).expect(on);
            assert!(c.collect, "{on}");
            assert_eq!(
                c.trace_path.as_deref(),
                Some(std::path::Path::new("snip_trace.json"))
            );
        }
        let c = parse_trace("out/My_Trace.json").expect("path value");
        assert!(c.collect);
        assert_eq!(
            c.trace_path.as_deref(),
            Some(std::path::Path::new("out/My_Trace.json"))
        );
        assert!(parse_trace("yes").is_none());
        assert!(parse_trace("trace.txt").is_none());
    }

    #[test]
    fn scoped_enable_restores_previous_state() {
        let _serial = test_state_lock();
        let was = enabled();
        {
            let _g = enabled_scope(true);
            assert!(enabled());
            {
                let _inner = enabled_scope(false);
                assert!(!enabled());
            }
            assert!(enabled());
        }
        assert_eq!(enabled(), was);
    }
}
