//! Quantization-signal accumulators — the raw material for the adaptive
//! precision controller.
//!
//! Every packed-quantizer `pack` reports one [`PackSignal`] per tensor it
//! quantizes (computed in `snip-quant`, which owns the tensor types); this
//! module only merges those numbers per quantizer kind: tensor/element
//! counts, running absmax (the largest magnitude any pack of that kind has
//! seen), group-scale saturation counts, clip counts, and the summed mean
//! absolute packed-round error. All cells are atomics updated with relaxed
//! ordering — packs are chunky operations, so a shared cell per kind is
//! uncontended in practice and keeps the merge trivially exact.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

/// Signals extracted from one `pack` call, in the domain the packer saw
/// (post-rotation for RHT, inliers-only for the outlier split).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PackSignal {
    /// Elements quantized.
    pub elems: u64,
    /// Largest |x| over the packed tensor.
    pub absmax: f32,
    /// Scale groups in the tensor.
    pub groups: u64,
    /// Groups whose absmax reaches the top of their code grid (scale
    /// ceiling) — the saturation signal SFMP-style policies watch.
    pub saturated: u64,
    /// Elements whose magnitude exceeds the representable ceiling of their
    /// group (clipped by the codebook).
    pub clipped: u64,
    /// Sum over elements of |x - dequantize(pack(x))|.
    pub abs_err_sum: f64,
}

struct Cell {
    tensors: AtomicU64,
    elems: AtomicU64,
    groups: AtomicU64,
    saturated: AtomicU64,
    clipped: AtomicU64,
    /// f32 bits; updated by CAS max (valid because non-negative floats
    /// order the same as their bit patterns).
    absmax_bits: AtomicU32,
    /// f64 bits; updated by CAS add.
    abs_err_sum_bits: AtomicU64,
}

impl Cell {
    fn new() -> Self {
        Cell {
            tensors: AtomicU64::new(0),
            elems: AtomicU64::new(0),
            groups: AtomicU64::new(0),
            saturated: AtomicU64::new(0),
            clipped: AtomicU64::new(0),
            absmax_bits: AtomicU32::new(0),
            abs_err_sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }
}

fn cells() -> &'static Mutex<BTreeMap<&'static str, Arc<Cell>>> {
    static CELLS: OnceLock<Mutex<BTreeMap<&'static str, Arc<Cell>>>> = OnceLock::new();
    CELLS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

thread_local! {
    static LOCAL: RefCell<HashMap<&'static str, Arc<Cell>>> = RefCell::new(HashMap::new());
}

fn cell_for(kind: &'static str) -> Arc<Cell> {
    LOCAL.with(|m| {
        let mut m = m.borrow_mut();
        Arc::clone(m.entry(kind).or_insert_with(|| {
            let mut g = cells().lock().expect("quant signal registry");
            Arc::clone(g.entry(kind).or_insert_with(|| Arc::new(Cell::new())))
        }))
    })
}

/// Merges one pack's signals into the accumulator for `kind`.
pub fn record(kind: &'static str, sig: &PackSignal) {
    let c = cell_for(kind);
    c.tensors.fetch_add(1, Relaxed);
    c.elems.fetch_add(sig.elems, Relaxed);
    c.groups.fetch_add(sig.groups, Relaxed);
    c.saturated.fetch_add(sig.saturated, Relaxed);
    c.clipped.fetch_add(sig.clipped, Relaxed);
    // CAS max over non-negative f32 bit patterns.
    let new_bits = sig.absmax.max(0.0).to_bits();
    let mut cur = c.absmax_bits.load(Relaxed);
    while new_bits > cur {
        match c
            .absmax_bits
            .compare_exchange_weak(cur, new_bits, Relaxed, Relaxed)
        {
            Ok(_) => break,
            Err(seen) => cur = seen,
        }
    }
    // CAS add over f64 bits.
    let mut cur = c.abs_err_sum_bits.load(Relaxed);
    loop {
        let next = (f64::from_bits(cur) + sig.abs_err_sum).to_bits();
        match c
            .abs_err_sum_bits
            .compare_exchange_weak(cur, next, Relaxed, Relaxed)
        {
            Ok(_) => break,
            Err(seen) => cur = seen,
        }
    }
}

/// Merged view of one quantizer kind's accumulator.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct QuantSignalSnapshot {
    /// Tensors packed.
    pub tensors: u64,
    /// Elements packed.
    pub elems: u64,
    /// Scale groups seen.
    pub groups: u64,
    /// Groups at their scale ceiling.
    pub saturated: u64,
    /// Elements clipped by the code grid.
    pub clipped: u64,
    /// Largest |x| seen by any pack of this kind.
    pub absmax: f64,
    /// `saturated / groups` (0 when no groups).
    pub saturation_rate: f64,
    /// `abs_err_sum / elems` (0 when no elements).
    pub mean_abs_error: f64,
}

/// Snapshot of every kind's accumulator, keyed by quantizer kind.
pub fn snapshot() -> BTreeMap<String, QuantSignalSnapshot> {
    let g = cells().lock().expect("quant signal registry");
    g.iter()
        .map(|(kind, c)| {
            let elems = c.elems.load(Relaxed);
            let groups = c.groups.load(Relaxed);
            let err_sum = f64::from_bits(c.abs_err_sum_bits.load(Relaxed));
            let snap = QuantSignalSnapshot {
                tensors: c.tensors.load(Relaxed),
                elems,
                groups,
                saturated: c.saturated.load(Relaxed),
                clipped: c.clipped.load(Relaxed),
                absmax: f64::from(f32::from_bits(c.absmax_bits.load(Relaxed))),
                saturation_rate: if groups == 0 {
                    0.0
                } else {
                    c.saturated.load(Relaxed) as f64 / groups as f64
                },
                mean_abs_error: if elems == 0 {
                    0.0
                } else {
                    err_sum / elems as f64
                },
            };
            ((*kind).to_string(), snap)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_merge_exactly() {
        const KIND: &str = "test.quantsig.merge";
        record(
            KIND,
            &PackSignal {
                elems: 100,
                absmax: 1.5,
                groups: 4,
                saturated: 1,
                clipped: 2,
                abs_err_sum: 0.5,
            },
        );
        record(
            KIND,
            &PackSignal {
                elems: 300,
                absmax: 0.75,
                groups: 12,
                saturated: 3,
                clipped: 0,
                abs_err_sum: 1.5,
            },
        );
        let snap = snapshot();
        let s = snap.get(KIND).expect("recorded kind");
        assert_eq!(s.tensors, 2);
        assert_eq!(s.elems, 400);
        assert_eq!(s.groups, 16);
        assert_eq!(s.saturated, 4);
        assert_eq!(s.clipped, 2);
        assert_eq!(s.absmax, 1.5);
        assert!((s.saturation_rate - 0.25).abs() < 1e-12);
        assert!((s.mean_abs_error - 2.0 / 400.0).abs() < 1e-12);
    }
}
