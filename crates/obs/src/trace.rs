//! RAII span timing and Chrome trace-event export.
//!
//! [`span`] returns a guard that, when collection is on, records a complete
//! event (`ph: "X"`) on drop: wall-clock start and duration against a
//! process-wide epoch, plus the span's duration into the histogram of the
//! same name (so `RUN_REPORT.json` carries span statistics even when the
//! trace file itself is not inspected). When collection is off the guard is
//! inert and construction costs one relaxed atomic load.
//!
//! [`chrome_trace_json`] serializes everything recorded so far into the
//! Chrome trace-event JSON object format (`{"traceEvents": [...]}`), which
//! `chrome://tracing` and <https://ui.perfetto.dev> load directly. Events
//! are sorted by timestamp so consumers (including the checked-in schema
//! validator) can rely on monotonic non-decreasing `ts`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on buffered events per thread: a runaway span site degrades to
/// a `trace.dropped_events` counter instead of unbounded memory growth.
const MAX_EVENTS_PER_THREAD: usize = 1 << 20;

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (first use wins).
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// One completed span, in epoch-relative nanoseconds.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name (the `name` field of the Chrome event).
    pub name: &'static str,
    /// Small dense id of the recording thread.
    pub tid: u64,
    /// Start, ns since the trace epoch.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
}

struct ThreadBuf {
    events: Mutex<Vec<TraceEvent>>,
}

fn sinks() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static SINKS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(Vec::new()))
}

fn next_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Relaxed)
}

thread_local! {
    static LOCAL: RefCell<Option<(u64, Arc<ThreadBuf>)>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(u64, &ThreadBuf) -> R) -> R {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let (tid, buf) = slot.get_or_insert_with(|| {
            let buf = Arc::new(ThreadBuf {
                events: Mutex::new(Vec::new()),
            });
            sinks().lock().expect("trace sinks").push(Arc::clone(&buf));
            (next_tid(), buf)
        });
        f(*tid, buf)
    })
}

/// Records one finished span. Public so instrumentation that measures
/// durations itself (e.g. cross-thread queue waits) can emit events without
/// a guard.
pub fn record_event(name: &'static str, start_ns: u64, dur_ns: u64) {
    with_local(|tid, buf| {
        let mut events = buf.events.lock().expect("trace buffer");
        if events.len() < MAX_EVENTS_PER_THREAD {
            events.push(TraceEvent {
                name,
                tid,
                start_ns,
                dur_ns,
            });
        } else {
            crate::registry::counter_add("trace.dropped_events", 1);
        }
    });
    crate::registry::hist_record(name, dur_ns);
}

/// RAII span guard: measures from construction to drop.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    name: &'static str,
    start_ns: u64,
    live: bool,
}

impl Span {
    /// Duration so far, ns (0 when collection was off at construction).
    pub fn elapsed_ns(&self) -> u64 {
        if self.live {
            now_ns().saturating_sub(self.start_ns)
        } else {
            0
        }
    }
}

/// Opens a span named `name`. Inert (one relaxed load, no clock read) when
/// collection is off.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span {
            name,
            start_ns: 0,
            live: false,
        };
    }
    Span {
        name,
        start_ns: now_ns(),
        live: true,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.live {
            let dur = now_ns().saturating_sub(self.start_ns);
            record_event(self.name, self.start_ns, dur);
        }
    }
}

/// Snapshot of every event recorded so far, in timestamp order. The buffers
/// are not drained: repeated exports each see the complete trace.
pub fn events_snapshot() -> Vec<TraceEvent> {
    let bufs: Vec<Arc<ThreadBuf>> = sinks().lock().expect("trace sinks").clone();
    let mut all = Vec::new();
    for buf in bufs {
        all.extend(buf.events.lock().expect("trace buffer").iter().cloned());
    }
    all.sort_by_key(|e| (e.start_ns, e.tid));
    all
}

// Chrome trace-event JSON uses camelCase/short keys; the derive serializes
// field identifiers verbatim, so the structs spell them exactly.
#[derive(serde::Serialize, serde::Deserialize)]
struct ChromeEvent {
    name: String,
    cat: String,
    ph: String,
    pid: u64,
    tid: u64,
    ts: f64,
    dur: f64,
}

#[allow(non_snake_case)]
#[derive(serde::Serialize, serde::Deserialize)]
struct ChromeTrace {
    traceEvents: Vec<ChromeEvent>,
    displayTimeUnit: String,
}

/// Serializes all recorded spans as a Chrome trace-event JSON object.
/// Timestamps and durations are microseconds (the trace format's unit),
/// sorted so `ts` is non-decreasing.
pub fn chrome_trace_json() -> String {
    let pid = std::process::id() as u64;
    let trace = ChromeTrace {
        traceEvents: events_snapshot()
            .into_iter()
            .map(|e| ChromeEvent {
                name: e.name.to_string(),
                cat: "snip".to_string(),
                ph: "X".to_string(),
                pid,
                tid: e.tid,
                ts: e.start_ns as f64 / 1000.0,
                dur: e.dur_ns as f64 / 1000.0,
            })
            .collect(),
        displayTimeUnit: "ms".to_string(),
    };
    serde_json::to_string(&trace).expect("trace serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_span_records_nothing() {
        let _serial = crate::test_state_lock();
        let _off = crate::enabled_scope(false);
        let before = events_snapshot().len();
        {
            let s = span("test.trace.inert");
            assert_eq!(s.elapsed_ns(), 0);
        }
        assert_eq!(events_snapshot().len(), before);
    }

    #[test]
    fn events_export_sorted_and_parseable() {
        record_event("test.trace.b", 2_000, 500);
        record_event("test.trace.a", 1_000, 250);
        let events = events_snapshot();
        assert!(events.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        let json = chrome_trace_json();
        let parsed: ChromeTrace = serde_json::from_str(&json).expect("well-formed trace");
        assert!(parsed.traceEvents.len() >= 2);
        assert!(parsed.traceEvents.windows(2).all(|w| w[0].ts <= w[1].ts));
    }
}
