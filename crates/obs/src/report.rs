//! The per-run report artifact (`RUN_REPORT.json`) and the checked-in
//! schema validators used by CI's observability smoke job.
//!
//! The report is a single JSON object merging everything the registry
//! knows at flush time — counters, gauges, histograms, quantization
//! signals — plus named sections contributed by higher layers through
//! [`set_section`] (`snip-pipeline` publishes `transport`, `snip-core`
//! publishes `training`). Schemas for both artifacts are checked into
//! `crates/obs/schema/` and compiled in with `include_str!`, so the
//! validators ([`validate_run_report`], [`validate_chrome_trace`]) always
//! enforce exactly the committed contract.

use serde::Content;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Identity wrapper giving any [`Content`] tree `Serialize`/`Deserialize`,
/// i.e. a generic JSON value for the vendored facade (which has no `Value`
/// type of its own).
#[derive(Clone, Debug, PartialEq)]
pub struct Json(pub Content);

impl serde::Serialize for Json {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

impl serde::Deserialize for Json {
    fn from_content(c: &Content) -> Result<Self, serde::Error> {
        Ok(Json(c.clone()))
    }
}

/// The committed report schema (see `crates/obs/schema/`).
pub const RUN_REPORT_SCHEMA: &str = include_str!("../schema/run_report.schema.json");
/// The committed trace schema (see `crates/obs/schema/`).
pub const CHROME_TRACE_SCHEMA: &str = include_str!("../schema/chrome_trace.schema.json");

fn sections() -> &'static Mutex<BTreeMap<String, Content>> {
    static S: OnceLock<Mutex<BTreeMap<String, Content>>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Publishes (or replaces) a named top-level report section. Layers that
/// own domain state call this right before flushing — e.g. the transport
/// publishes its merged per-link byte counters as `"transport"`.
pub fn set_section(name: &str, value: Content) {
    sections()
        .lock()
        .expect("report sections")
        .insert(name.to_string(), value);
}

fn u64_content(v: u64) -> Content {
    Content::U64(v)
}

fn finite_f64(v: f64) -> Content {
    Content::F64(v)
}

/// Builds the full report tree from the current registry state.
pub fn build_report() -> Content {
    let snap = crate::registry::snapshot();
    let mut top: Vec<(String, Content)> = vec![
        ("schema".to_string(), u64_content(1)),
        (
            "generated_by".to_string(),
            Content::Str("snip-obs".to_string()),
        ),
        (
            "trace_path".to_string(),
            match crate::trace_path() {
                Some(p) => Content::Str(p.display().to_string()),
                None => Content::Null,
            },
        ),
        (
            "counters".to_string(),
            Content::Map(
                snap.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), u64_content(*v)))
                    .collect(),
            ),
        ),
        (
            "gauges".to_string(),
            Content::Map(
                snap.gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), finite_f64(*v)))
                    .collect(),
            ),
        ),
        (
            "histograms".to_string(),
            Content::Map(
                snap.hists
                    .iter()
                    .map(|(k, h)| (k.clone(), serde::Serialize::to_content(h)))
                    .collect(),
            ),
        ),
        (
            "quant_signals".to_string(),
            Content::Map(
                crate::quantsig::snapshot()
                    .iter()
                    .map(|(k, s)| (k.clone(), serde::Serialize::to_content(s)))
                    .collect(),
            ),
        ),
    ];
    for (name, value) in sections().lock().expect("report sections").iter() {
        top.push((name.clone(), value.clone()));
    }
    Content::Map(top)
}

/// Serializes [`build_report`] to a JSON string.
pub fn report_json() -> String {
    serde_json::to_string(&Json(build_report())).expect("report serialization is infallible")
}

fn parse_json(label: &str, s: &str) -> Result<Content, String> {
    serde_json::from_str::<Json>(s)
        .map(|j| j.0)
        .map_err(|e| format!("{label}: not well-formed JSON: {e}"))
}

fn required_keys(schema: &Content, field: &str) -> Vec<String> {
    match schema.get(field) {
        Some(Content::Seq(keys)) => keys
            .iter()
            .filter_map(|k| match k {
                Content::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

fn check_keys(label: &str, obj: &Content, keys: &[String]) -> Result<(), String> {
    if !matches!(obj, Content::Map(_)) {
        return Err(format!("{label}: expected a JSON object"));
    }
    for k in keys {
        if obj.get(k).is_none() {
            return Err(format!("{label}: missing required key `{k}`"));
        }
    }
    Ok(())
}

fn number_of(c: &Content) -> Option<f64> {
    match c {
        Content::U64(v) => Some(*v as f64),
        Content::I64(v) => Some(*v as f64),
        Content::F64(v) => Some(*v),
        _ => None,
    }
}

/// Extracts an unsigned integer field, tolerating the JSON number forms.
pub fn content_u64(c: &Content) -> Option<u64> {
    match c {
        Content::U64(v) => Some(*v),
        Content::I64(v) => u64::try_from(*v).ok(),
        Content::F64(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
        _ => None,
    }
}

/// Summary returned by [`validate_chrome_trace`].
#[derive(Clone, Copy, Debug)]
pub struct TraceCheck {
    /// Number of trace events in the file.
    pub events: usize,
}

/// Validates a Chrome trace JSON string against the checked-in schema:
/// well-formed JSON, required top-level and per-event keys, `ts`
/// non-decreasing in file order, `dur` non-negative.
pub fn validate_chrome_trace(json: &str) -> Result<TraceCheck, String> {
    let schema = parse_json("trace schema", CHROME_TRACE_SCHEMA)?;
    let trace = parse_json("trace", json)?;
    check_keys("trace", &trace, &required_keys(&schema, "required"))?;
    let events = match trace.get("traceEvents") {
        Some(Content::Seq(events)) => events,
        _ => return Err("trace: `traceEvents` is not an array".to_string()),
    };
    let event_keys = required_keys(&schema, "event_required");
    let mut last_ts = f64::NEG_INFINITY;
    for (i, ev) in events.iter().enumerate() {
        check_keys(&format!("trace event {i}"), ev, &event_keys)?;
        let ts = ev
            .get("ts")
            .and_then(number_of)
            .ok_or_else(|| format!("trace event {i}: `ts` is not a number"))?;
        let dur = ev
            .get("dur")
            .and_then(number_of)
            .ok_or_else(|| format!("trace event {i}: `dur` is not a number"))?;
        if ts < last_ts {
            return Err(format!(
                "trace event {i}: timestamps not monotonic ({ts} after {last_ts})"
            ));
        }
        if dur < 0.0 {
            return Err(format!("trace event {i}: negative duration {dur}"));
        }
        last_ts = ts;
    }
    Ok(TraceCheck {
        events: events.len(),
    })
}

/// Summary returned by [`validate_run_report`].
#[derive(Clone, Debug, Default)]
pub struct ReportCheck {
    /// `transport.payload_bytes`, when the transport section is present.
    pub transport_payload_bytes: Option<u64>,
    /// `transport.envelope_bytes`, when the transport section is present.
    pub transport_envelope_bytes: Option<u64>,
    /// `training.steps`, when the training section is present.
    pub training_steps: Option<u64>,
}

/// Validates a `RUN_REPORT.json` string against the checked-in schema:
/// well-formed JSON, required top-level keys, histogram field shape, and —
/// when a section listed in the schema's `section_required` is present —
/// that section's mandatory fields.
pub fn validate_run_report(json: &str) -> Result<ReportCheck, String> {
    let schema = parse_json("report schema", RUN_REPORT_SCHEMA)?;
    let report = parse_json("report", json)?;
    check_keys("report", &report, &required_keys(&schema, "required"))?;
    let hist_keys = required_keys(&schema, "histogram_required");
    if let Some(Content::Map(hists)) = report.get("histograms") {
        for (name, h) in hists {
            check_keys(&format!("histogram `{name}`"), h, &hist_keys)?;
        }
    } else {
        return Err("report: `histograms` is not an object".to_string());
    }
    if let Some(Content::Map(section_schemas)) = schema.get("section_required") {
        for (section, keys) in section_schemas {
            if let Some(present) = report.get(section) {
                let keys = match keys {
                    Content::Seq(keys) => keys
                        .iter()
                        .filter_map(|k| match k {
                            Content::Str(s) => Some(s.clone()),
                            _ => None,
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                check_keys(&format!("section `{section}`"), present, &keys)?;
            }
        }
    }
    let mut check = ReportCheck::default();
    if let Some(t) = report.get("transport") {
        check.transport_payload_bytes = t.get("payload_bytes").and_then(content_u64);
        check.transport_envelope_bytes = t.get("envelope_bytes").and_then(content_u64);
    }
    if let Some(t) = report.get("training") {
        check.training_steps = t.get("steps").and_then(content_u64);
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_report_passes_its_own_schema() {
        crate::registry::counter_add("test.report.counter", 3);
        crate::registry::hist_record("test.report.hist", 42);
        let json = report_json();
        validate_run_report(&json).expect("self-built report validates");
        let tree = parse_json("report", &json).expect("parse back");
        let counter = tree
            .get("counters")
            .and_then(|c| c.get("test.report.counter"))
            .and_then(content_u64);
        assert_eq!(counter, Some(3));
    }

    #[test]
    fn emitted_trace_passes_its_own_schema() {
        crate::trace::record_event("test.report.span", 10, 5);
        let json = crate::trace::chrome_trace_json();
        let check = validate_chrome_trace(&json).expect("self-built trace validates");
        assert!(check.events >= 1);
    }

    #[test]
    fn validators_reject_malformed_artifacts() {
        assert!(validate_chrome_trace("{").is_err());
        assert!(validate_chrome_trace(r#"{"displayTimeUnit":"ms"}"#).is_err());
        assert!(validate_chrome_trace(
            r#"{"traceEvents":[{"name":"a","cat":"c","ph":"X","pid":1,"tid":1,"ts":5.0,"dur":1.0},
                {"name":"b","cat":"c","ph":"X","pid":1,"tid":1,"ts":4.0,"dur":1.0}],
                "displayTimeUnit":"ms"}"#
        )
        .is_err());
        assert!(validate_run_report("[]").is_err());
        assert!(validate_run_report(r#"{"schema":1}"#).is_err());
    }

    #[test]
    fn sections_with_missing_fields_fail_validation() {
        // A transport section missing `payload_bytes` must be rejected.
        let bad = r#"{"schema":1,"generated_by":"snip-obs","trace_path":null,
            "counters":{},"gauges":{},"histograms":{},"quant_signals":{},
            "transport":{"world":2}}"#;
        assert!(validate_run_report(bad).is_err());
    }
}
