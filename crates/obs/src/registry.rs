//! Process-wide metric registry: counters, gauges and fixed-bucket
//! histograms, aggregated from lock-free per-thread shards.
//!
//! Each thread owns a private shard per metric (an `Arc`'d atomic cell or
//! bucket array) found through a thread-local map, so the hot update path
//! is one hash lookup plus one uncontended relaxed `fetch_add` — no lock is
//! taken after the first touch of a metric on a thread. The global side
//! keeps a second `Arc` to every shard, so counts survive thread exit and
//! [`counter_value`]/[`snapshot`] can sum shards at any time without
//! stopping writers. The registry never loses an update: merging is a sum
//! of relaxed atomic loads over cells that are only ever incremented.
//!
//! Callers are expected to gate updates on [`crate::enabled`]; the registry
//! itself does not check, which keeps it usable from tests that force
//! collection on.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: one per power of two of the recorded value,
/// so bucket `i` counts values in `[2^i, 2^{i+1})` (bucket 0 is `[0, 2)`).
/// 64 buckets cover the whole `u64` range — durations in nanoseconds from
/// sub-microsecond kernels to multi-hour runs land in distinct buckets.
pub const HIST_BUCKETS: usize = 64;

/// Maps a value to its power-of-two bucket: `floor(log2(max(v, 1)))`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// Inclusive lower edge of bucket `i` (`0` for bucket 0, else `2^i`).
pub fn bucket_lower_edge(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

struct HistCell {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistCell {
    fn new() -> Self {
        HistCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

#[derive(Default)]
struct Global {
    counters: Mutex<HashMap<&'static str, Vec<Arc<AtomicU64>>>>,
    hists: Mutex<HashMap<&'static str, Vec<Arc<HistCell>>>>,
    // Gauges are last-write-wins process globals (no sharding to merge).
    gauges: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
}

fn global() -> &'static Global {
    static G: OnceLock<Global> = OnceLock::new();
    G.get_or_init(Global::default)
}

thread_local! {
    static LOCAL_COUNTERS: RefCell<HashMap<&'static str, Arc<AtomicU64>>> =
        RefCell::new(HashMap::new());
    static LOCAL_HISTS: RefCell<HashMap<&'static str, Arc<HistCell>>> =
        RefCell::new(HashMap::new());
}

/// Adds `delta` to this thread's shard of counter `name`. Lock-free after
/// the first touch of `name` on the calling thread.
pub fn counter_add(name: &'static str, delta: u64) {
    LOCAL_COUNTERS.with(|m| {
        let mut m = m.borrow_mut();
        let cell = m.entry(name).or_insert_with(|| {
            let cell = Arc::new(AtomicU64::new(0));
            let mut g = global().counters.lock().expect("counter registry");
            g.entry(name).or_default().push(Arc::clone(&cell));
            cell
        });
        cell.fetch_add(delta, Relaxed);
    });
}

/// Sum of counter `name` over every thread shard ever created (including
/// shards of threads that have exited).
pub fn counter_value(name: &str) -> u64 {
    let g = global().counters.lock().expect("counter registry");
    g.get(name)
        .map(|cells| cells.iter().map(|c| c.load(Relaxed)).sum())
        .unwrap_or(0)
}

/// This thread's shard of counter `name` only. Exact for work performed on
/// the calling thread — the reading behind `StepOutput`'s wall-time fields,
/// where each data-parallel rank steps its model on its own thread.
pub fn thread_counter_value(name: &str) -> u64 {
    LOCAL_COUNTERS.with(|m| m.borrow().get(name).map(|c| c.load(Relaxed)).unwrap_or(0))
}

/// Records `value` into histogram `name` on this thread's shard.
pub fn hist_record(name: &'static str, value: u64) {
    LOCAL_HISTS.with(|m| {
        let mut m = m.borrow_mut();
        let cell = m.entry(name).or_insert_with(|| {
            let cell = Arc::new(HistCell::new());
            let mut g = global().hists.lock().expect("histogram registry");
            g.entry(name).or_default().push(Arc::clone(&cell));
            cell
        });
        cell.count.fetch_add(1, Relaxed);
        cell.sum.fetch_add(value, Relaxed);
        cell.buckets[bucket_index(value)].fetch_add(1, Relaxed);
    });
}

/// Sets gauge `name` to `v` (last write wins across threads).
pub fn gauge_set(name: &'static str, v: f64) {
    let cell = {
        let mut g = global().gauges.lock().expect("gauge registry");
        Arc::clone(
            g.entry(name)
                .or_insert_with(|| Arc::new(AtomicU64::new(0.0f64.to_bits()))),
        )
    };
    cell.store(v.to_bits(), Relaxed);
}

/// A merged view of one histogram.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistSnapshot {
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all recorded values (wraps on overflow, like the cells).
    pub sum: u64,
    /// Per-bucket counts; bucket `i` holds values in `[2^i, 2^{i+1})`.
    pub buckets: Vec<u64>,
}

/// Merges histogram `name` across all thread shards, or `None` if it was
/// never recorded.
pub fn hist_snapshot(name: &str) -> Option<HistSnapshot> {
    let g = global().hists.lock().expect("histogram registry");
    let cells = g.get(name)?;
    let mut snap = HistSnapshot {
        count: 0,
        sum: 0,
        buckets: vec![0; HIST_BUCKETS],
    };
    for c in cells.iter() {
        snap.count += c.count.load(Relaxed);
        snap.sum += c.sum.load(Relaxed);
        for (b, cell) in snap.buckets.iter_mut().zip(c.buckets.iter()) {
            *b += cell.load(Relaxed);
        }
    }
    Some(snap)
}

/// A point-in-time merge of every metric in the registry.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// All counters, merged across thread shards.
    pub counters: BTreeMap<String, u64>,
    /// All gauges.
    pub gauges: BTreeMap<String, f64>,
    /// All histograms, merged across thread shards.
    pub hists: BTreeMap<String, HistSnapshot>,
}

/// Merges every registered metric. Writers are not paused, so values from
/// in-flight updates may or may not be included — each cell is still read
/// atomically, so no individual update is ever torn or double-counted.
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    {
        let g = global().counters.lock().expect("counter registry");
        for (name, cells) in g.iter() {
            let total: u64 = cells.iter().map(|c| c.load(Relaxed)).sum();
            snap.counters.insert((*name).to_string(), total);
        }
    }
    {
        let g = global().gauges.lock().expect("gauge registry");
        for (name, cell) in g.iter() {
            snap.gauges
                .insert((*name).to_string(), f64::from_bits(cell.load(Relaxed)));
        }
    }
    let names: Vec<String> = {
        let g = global().hists.lock().expect("histogram registry");
        g.keys().map(|k| (*k).to_string()).collect()
    };
    for name in names {
        if let Some(h) = hist_snapshot(&name) {
            snap.hists.insert(name, h);
        }
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        // Bucket 0 is [0, 2): both 0 and 1 land there.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        // Each exact power of two opens its own bucket...
        for i in 1..64 {
            assert_eq!(bucket_index(1u64 << i), i as usize, "edge 2^{i}");
        }
        // ...and the value just below it still belongs to the previous one.
        for i in 2..64 {
            assert_eq!(bucket_index((1u64 << i) - 1), i as usize - 1, "below 2^{i}");
        }
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_lower_edge(0), 0);
        assert_eq!(bucket_lower_edge(1), 2);
        assert_eq!(bucket_lower_edge(10), 1024);
    }

    #[test]
    fn hist_records_land_in_documented_buckets() {
        const NAME: &str = "test.registry.bucket_landing";
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, 1025] {
            hist_record(NAME, v);
        }
        let h = hist_snapshot(NAME).expect("recorded");
        assert_eq!(h.count, 8);
        assert_eq!(h.sum, 1 + 2 + 3 + 4 + 1023 + 1024 + 1025);
        assert_eq!(h.buckets[0], 2); // 0, 1
        assert_eq!(h.buckets[1], 2); // 2, 3
        assert_eq!(h.buckets[2], 1); // 4
        assert_eq!(h.buckets[9], 1); // 1023
        assert_eq!(h.buckets[10], 2); // 1024, 1025
    }

    #[test]
    fn thread_local_view_is_distinct_from_merged_view() {
        const NAME: &str = "test.registry.thread_view";
        counter_add(NAME, 5);
        std::thread::spawn(|| counter_add(NAME, 7))
            .join()
            .expect("counter thread");
        assert_eq!(thread_counter_value(NAME), 5);
        assert_eq!(counter_value(NAME), 12);
    }
}
