//! Shared environment-variable parsing with a warn-once contract.
//!
//! Every SNIP runtime knob (`SNIP_SIMD`, `SNIP_THREADS`, `SNIP_TRACE`)
//! follows the same idiom: the variable is read **once** per process from
//! inside a `OnceLock` initializer, an unrecognized value emits **one**
//! warning to stderr listing the accepted values, and the process then
//! proceeds with the documented default instead of silently ignoring the
//! typo. Before this module each crate hand-rolled that loop; now they all
//! call [`read`] (or [`parse`] when the raw value comes from somewhere other
//! than the real environment, e.g. a unit test).

/// Outcome of parsing one environment variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnvValue<T> {
    /// Variable absent, empty, or whitespace-only: use the default quietly.
    Unset,
    /// Variable present and recognized.
    Parsed(T),
    /// Variable present but not recognized; a warning was (or must be)
    /// emitted and the default applies.
    Unrecognized,
}

impl<T> EnvValue<T> {
    /// The parsed value, or `default` for both `Unset` and `Unrecognized`.
    pub fn unwrap_or(self, default: T) -> T {
        match self {
            EnvValue::Parsed(v) => v,
            _ => default,
        }
    }

    /// True only for `Unrecognized`.
    pub fn is_unrecognized(&self) -> bool {
        matches!(self, EnvValue::Unrecognized)
    }
}

/// Pure half of the idiom: classifies `raw` (as read from the environment)
/// with `parse`, without touching the process environment or stderr.
/// `parse` returns `None` for values it does not recognize.
pub fn parse<T>(raw: Option<&str>, parse: impl FnOnce(&str) -> Option<T>) -> EnvValue<T> {
    match raw.map(str::trim) {
        None | Some("") => EnvValue::Unset,
        Some(v) => match parse(v) {
            Some(t) => EnvValue::Parsed(t),
            None => EnvValue::Unrecognized,
        },
    }
}

/// Reads `name` from the process environment, parses it with `parse_fn`,
/// and on an unrecognized value emits one stderr warning listing
/// `accepted` (a short human-readable table of accepted values). Returns
/// `None` for unset *and* unrecognized values, so callers substitute their
/// default either way.
///
/// Call this from a `OnceLock`/`LazyLock` initializer: the once-per-process
/// warning guarantee is structural (the initializer runs once), exactly as
/// `SNIP_SIMD` always behaved.
pub fn read<T>(name: &str, accepted: &str, parse_fn: impl FnOnce(&str) -> Option<T>) -> Option<T> {
    let raw = std::env::var(name).ok();
    match parse(raw.as_deref(), parse_fn) {
        EnvValue::Parsed(v) => Some(v),
        EnvValue::Unset => None,
        EnvValue::Unrecognized => {
            warn_unrecognized(name, raw.as_deref().unwrap_or(""), accepted);
            None
        }
    }
}

/// The shared warning line: one per unrecognized variable per process (the
/// caller guarantees once-ness by warning from a `OnceLock` initializer).
pub fn warn_unrecognized(name: &str, raw: &str, accepted: &str) {
    eprintln!("snip: ignoring unrecognized {name}={raw:?}; accepted values: {accepted}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_and_blank_are_unset() {
        assert_eq!(parse(None, |_| Some(1)), EnvValue::Unset);
        assert_eq!(parse(Some(""), |_| Some(1)), EnvValue::Unset);
        assert_eq!(parse(Some("   "), |_| Some(1)), EnvValue::Unset);
    }

    #[test]
    fn recognized_values_parse_and_trim() {
        let v = parse(Some(" 4 "), |s| s.parse::<usize>().ok());
        assert_eq!(v, EnvValue::Parsed(4));
    }

    #[test]
    fn unrecognized_values_fall_back() {
        let v = parse(Some("banana"), |s| s.parse::<usize>().ok());
        assert!(v.is_unrecognized());
        assert_eq!(v.unwrap_or(7), 7);
    }
}
