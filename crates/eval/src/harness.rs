//! Zero-shot log-likelihood evaluation harness (the LM-Evaluation-Harness
//! role in the paper's §6.1).

use crate::tasks::{Task, TaskItem};
use serde::{Deserialize, Serialize};
use snip_data::SyntheticLanguage;
use snip_nn::loss::token_log_probs;
use snip_nn::Model;
use snip_tensor::rng::Rng;

/// Accuracy of one suite.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TaskScore {
    /// Suite name.
    pub task: String,
    /// Accuracy in percent.
    pub accuracy: f64,
    /// Items evaluated.
    pub n_items: usize,
}

/// A full evaluation report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Per-suite scores, in [`Task::ALL`] order.
    pub scores: Vec<TaskScore>,
}

impl EvalReport {
    /// Unweighted mean accuracy across suites (the paper's "Average" column).
    pub fn average(&self) -> f64 {
        if self.scores.is_empty() {
            return 0.0;
        }
        self.scores.iter().map(|s| s.accuracy).sum::<f64>() / self.scores.len() as f64
    }

    /// Score of one suite by name.
    pub fn score(&self, name: &str) -> Option<f64> {
        self.scores
            .iter()
            .find(|s| s.task == name)
            .map(|s| s.accuracy)
    }
}

/// Harness configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Items per suite.
    pub items_per_task: usize,
    /// Item-generation seed (fixed across schemes for paired comparison).
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            items_per_task: 40,
            seed: 2024,
        }
    }
}

/// Scores one item: every choice is appended to the context, all choices run
/// as one batch, and the choice with the highest total log-likelihood over
/// its tokens wins.
pub fn score_item(model: &Model, item: &TaskItem, rng: &mut Rng) -> usize {
    let n_choices = item.choices.len();
    let choice_len = item.choices[0].len();
    let ctx_len = item.context.len();
    let total_len = ctx_len + choice_len;
    let max_seq = model.config().max_seq;
    // Trim the context from the left if the window is too long.
    let (ctx, ctx_len) = if total_len > max_seq {
        let drop = total_len - max_seq;
        (&item.context[drop..], ctx_len - drop)
    } else {
        (&item.context[..], ctx_len)
    };
    let seq = ctx_len + choice_len;
    let mut tokens = Vec::with_capacity(n_choices * seq);
    for choice in &item.choices {
        tokens.extend_from_slice(ctx);
        tokens.extend_from_slice(choice);
    }
    let logits = model.logits(&tokens, n_choices, seq, rng);
    // For row r, the choice tokens occupy positions [ctx_len, seq); each is
    // predicted by the logits at the previous position.
    let mut best = 0usize;
    let mut best_lp = f64::NEG_INFINITY;
    for (r, choice) in item.choices.iter().enumerate() {
        let mut lp = 0.0;
        for (k, &tok) in choice.iter().enumerate() {
            let pos = r * seq + ctx_len + k - 1;
            let row_logits =
                snip_tensor::Tensor::from_vec(1, logits.cols(), logits.row(pos).to_vec());
            lp += token_log_probs(&row_logits, &[tok])[0];
        }
        if lp > best_lp {
            best_lp = lp;
            best = r;
        }
    }
    best
}

/// Evaluates a model on all suites.
pub fn evaluate(model: &Model, language: &SyntheticLanguage, cfg: &EvalConfig) -> EvalReport {
    let mut rng = Rng::seed_from(cfg.seed ^ 0xE7A1);
    let scores = Task::ALL
        .iter()
        .map(|&task| {
            let items = task.generate(language, cfg.items_per_task, cfg.seed);
            let correct = items
                .iter()
                .filter(|item| score_item(model, item, &mut rng) == item.correct)
                .count();
            TaskScore {
                task: task.name().to_string(),
                accuracy: 100.0 * correct as f64 / items.len().max(1) as f64,
                n_items: items.len(),
            }
        })
        .collect();
    EvalReport { scores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snip_data::LanguageConfig;
    use snip_nn::ModelConfig;

    fn setup() -> (Model, SyntheticLanguage) {
        let model = Model::new(ModelConfig::tiny_test(), 61).unwrap();
        let lang = SyntheticLanguage::new(
            LanguageConfig {
                vocab: 17,
                ..Default::default()
            },
            62,
        );
        (model, lang)
    }

    #[test]
    fn untrained_model_scores_near_chance() {
        let (model, lang) = setup();
        let report = evaluate(
            &model,
            &lang,
            &EvalConfig {
                items_per_task: 30,
                seed: 1,
            },
        );
        assert_eq!(report.scores.len(), 8);
        // Untrained tiny model: each suite near its chance floor (generous
        // band — 30 items is noisy).
        for (score, task) in report.scores.iter().zip(Task::ALL) {
            let chance = task.chance();
            assert!(
                (score.accuracy - chance).abs() <= 35.0,
                "{}: {} vs chance {}",
                score.task,
                score.accuracy,
                chance
            );
        }
    }

    #[test]
    fn report_average_and_lookup() {
        let report = EvalReport {
            scores: vec![
                TaskScore {
                    task: "a".into(),
                    accuracy: 40.0,
                    n_items: 10,
                },
                TaskScore {
                    task: "b".into(),
                    accuracy: 60.0,
                    n_items: 10,
                },
            ],
        };
        assert_eq!(report.average(), 50.0);
        assert_eq!(report.score("a"), Some(40.0));
        assert_eq!(report.score("zzz"), None);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let (model, lang) = setup();
        let cfg = EvalConfig {
            items_per_task: 10,
            seed: 5,
        };
        let a = evaluate(&model, &lang, &cfg);
        let b = evaluate(&model, &lang, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn score_item_prefers_likely_choice() {
        // A model trained briefly on the language should beat chance on the
        // easy completion suite (random distractors are wildly unlikely).
        use snip_core::trainer::{Trainer, TrainerConfig};
        let mut tcfg = TrainerConfig::tiny();
        tcfg.model.vocab_size = 96;
        let mut t = Trainer::new(tcfg).unwrap();
        let _ = t.train(150);
        let lang = SyntheticLanguage::new(LanguageConfig::default(), t.config().data_seed);
        let report = evaluate(
            &t.model,
            &lang,
            &EvalConfig {
                items_per_task: 30,
                seed: 3,
            },
        );
        let easy = report.score("ARC_e-syn").unwrap();
        assert!(easy > 40.0, "trained model easy-completion accuracy {easy}");
    }
}
