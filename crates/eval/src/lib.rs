//! # snip-eval
//!
//! Synthetic zero-shot evaluation harness for the SNIP reproduction — the
//! role the LM-Evaluation-Harness plays in the paper's §6.1.
//!
//! Eight multiple-choice suites ([`tasks::Task`]) stand in for the paper's
//! benchmarks (ARC-e/c, MMLU, BoolQ, HellaSwag, OBQA, PiQA, WinoGrande),
//! scored by 0-shot model log-likelihood ([`harness::evaluate`]). The suites
//! share the paper benchmarks' key property for this evaluation: healthy
//! models score well above chance, collapsed models fall to the chance
//! floor, so schemes rank identically.
//!
//! # Example
//!
//! ```
//! use snip_data::{LanguageConfig, SyntheticLanguage};
//! use snip_eval::{evaluate, EvalConfig};
//! use snip_nn::{Model, ModelConfig};
//!
//! let model = Model::new(ModelConfig::tiny_test(), 0).unwrap();
//! let lang = SyntheticLanguage::new(LanguageConfig { vocab: 17, ..Default::default() }, 1);
//! let report = evaluate(&model, &lang, &EvalConfig { items_per_task: 4, seed: 2 });
//! assert_eq!(report.scores.len(), 8);
//! ```

pub mod harness;
pub mod tasks;

pub use harness::{evaluate, score_item, EvalConfig, EvalReport, TaskScore};
pub use tasks::{Task, TaskItem};
