//! Synthetic zero-shot multiple-choice task suites.
//!
//! The paper evaluates with the LM-Evaluation-Harness on ARC, MMLU, BoolQ,
//! HellaSwag, OBQA, PiQA and WinoGrande. Those corpora are unavailable here,
//! and the paper's use of them is *relative*: ranking quantization schemes by
//! how much model quality they preserve. We therefore build one synthetic
//! suite per paper category with the same scoring protocol (0-shot
//! log-likelihood over fixed choices) and the same chance floors (25% for
//! 4-way, 50% for 2-way tasks). A healthy model scores far above chance on
//! every suite; a diverged model falls to chance — reproducing the dynamic
//! range the paper's tables rely on (e.g. 44 → 33 average on collapse).

use serde::{Deserialize, Serialize};
use snip_data::SyntheticLanguage;
use snip_tensor::rng::Rng;

/// One multiple-choice item: a shared context and fixed-length choices.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskItem {
    /// Context tokens fed before each choice.
    pub context: Vec<u32>,
    /// Candidate continuations (all the same length).
    pub choices: Vec<Vec<u32>>,
    /// Index of the correct choice.
    pub correct: usize,
}

/// The eight synthetic suites, named for the paper benchmark each stands in
/// for (see module docs and DESIGN.md §1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// ARC-e analogue: pick the true 6-token continuation vs uniform noise.
    CompletionEasy,
    /// ARC-c analogue: distractors are plausible continuations of *other*
    /// contexts.
    CompletionHard,
    /// MMLU analogue: short context, 4 topic-consistent candidates.
    TopicCloze,
    /// BoolQ analogue: binary next-token choice.
    NextToken,
    /// HellaSwag analogue: true continuation vs corrupted copies.
    CorruptedEnding,
    /// OBQA analogue: induction retrieval — recall a token pattern seen
    /// earlier in context.
    Induction,
    /// PiQA analogue: binary local-plausibility (true next token vs a token
    /// that never follows in this language).
    Bigram,
    /// WinoGrande analogue: binary order sensitivity (true continuation vs
    /// its reversal).
    OrderPair,
}

impl Task {
    /// Every suite, in the paper's table column order.
    pub const ALL: [Task; 8] = [
        Task::CompletionHard,
        Task::CompletionEasy,
        Task::TopicCloze,
        Task::NextToken,
        Task::CorruptedEnding,
        Task::Induction,
        Task::Bigram,
        Task::OrderPair,
    ];

    /// Suite name.
    pub fn name(self) -> &'static str {
        match self {
            Task::CompletionEasy => "ARC_e-syn",
            Task::CompletionHard => "ARC_c-syn",
            Task::TopicCloze => "MMLU-syn",
            Task::NextToken => "BoolQ-syn",
            Task::CorruptedEnding => "HellaSwag-syn",
            Task::Induction => "Obqa-syn",
            Task::Bigram => "PiQa-syn",
            Task::OrderPair => "WinoGrande-syn",
        }
    }

    /// Number of choices per item.
    pub fn n_choices(self) -> usize {
        match self {
            Task::NextToken | Task::Bigram | Task::OrderPair => 2,
            _ => 4,
        }
    }

    /// Chance accuracy (%) of random guessing.
    pub fn chance(self) -> f64 {
        100.0 / self.n_choices() as f64
    }

    /// Generates `n` items from the language, deterministically from `seed`.
    pub fn generate(self, lang: &SyntheticLanguage, n: usize, seed: u64) -> Vec<TaskItem> {
        let mut rng = Rng::seed_from(seed ^ (self as u64).wrapping_mul(0x9E37_79B9));
        (0..n).map(|_| self.generate_item(lang, &mut rng)).collect()
    }

    fn generate_item(self, lang: &SyntheticLanguage, rng: &mut Rng) -> TaskItem {
        let vocab = lang.config().vocab;
        match self {
            Task::CompletionEasy => {
                let seq = lang.generate(30, rng);
                let context = seq[..24].to_vec();
                let correct_choice = seq[24..30].to_vec();
                let mut choices: Vec<Vec<u32>> = (0..3)
                    .map(|_| (0..6).map(|_| rng.below(vocab) as u32).collect())
                    .collect();
                let correct = rng.below(4);
                choices.insert(correct, correct_choice);
                TaskItem {
                    context,
                    choices,
                    correct,
                }
            }
            Task::CompletionHard => {
                let seq = lang.generate(30, rng);
                let context = seq[..24].to_vec();
                let correct_choice = seq[24..30].to_vec();
                let mut choices: Vec<Vec<u32>> = (0..3)
                    .map(|_| {
                        let other = lang.generate(30, rng);
                        other[24..30].to_vec()
                    })
                    .collect();
                let correct = rng.below(4);
                choices.insert(correct, correct_choice);
                TaskItem {
                    context,
                    choices,
                    correct,
                }
            }
            Task::TopicCloze => {
                let seq = lang.generate(20, rng);
                let context = seq[..16].to_vec();
                let correct_choice = seq[16..20].to_vec();
                let mut choices: Vec<Vec<u32>> = (0..3).map(|_| lang.generate(4, rng)).collect();
                let correct = rng.below(4);
                choices.insert(correct, correct_choice);
                TaskItem {
                    context,
                    choices,
                    correct,
                }
            }
            Task::NextToken => {
                let seq = lang.generate(21, rng);
                let context = seq[..20].to_vec();
                let truth = seq[20];
                let mut distractor = rng.below(vocab) as u32;
                while distractor == truth {
                    distractor = rng.below(vocab) as u32;
                }
                let correct = rng.below(2);
                let choices = if correct == 0 {
                    vec![vec![truth], vec![distractor]]
                } else {
                    vec![vec![distractor], vec![truth]]
                };
                TaskItem {
                    context,
                    choices,
                    correct,
                }
            }
            Task::CorruptedEnding => {
                let seq = lang.generate(28, rng);
                let context = seq[..20].to_vec();
                let correct_choice = seq[20..28].to_vec();
                let mut choices: Vec<Vec<u32>> = (0..3)
                    .map(|_| {
                        let mut c = correct_choice.clone();
                        for _ in 0..3 {
                            let pos = rng.below(c.len());
                            c[pos] = rng.below(vocab) as u32;
                        }
                        c
                    })
                    .collect();
                let correct = rng.below(4);
                choices.insert(correct, correct_choice);
                TaskItem {
                    context,
                    choices,
                    correct,
                }
            }
            Task::Induction => {
                // Context: noise, [A B C D], noise, [A B C] → answer D.
                let pattern: Vec<u32> = (0..4).map(|_| rng.below(vocab) as u32).collect();
                let mut context = lang.generate(8, rng);
                context.extend_from_slice(&pattern);
                context.extend(lang.generate(6, rng));
                context.extend_from_slice(&pattern[..3]);
                let truth = pattern[3];
                let mut choices: Vec<Vec<u32>> = (0..3)
                    .map(|_| {
                        let mut d = rng.below(vocab) as u32;
                        while d == truth {
                            d = rng.below(vocab) as u32;
                        }
                        vec![d]
                    })
                    .collect();
                let correct = rng.below(4);
                choices.insert(correct, vec![truth]);
                TaskItem {
                    context,
                    choices,
                    correct,
                }
            }
            Task::Bigram => {
                let seq = lang.generate(13, rng);
                let context = seq[..12].to_vec();
                let truth = seq[12];
                let mut distractor = rng.below(vocab) as u32;
                while distractor == truth {
                    distractor = rng.below(vocab) as u32;
                }
                let correct = rng.below(2);
                let choices = if correct == 0 {
                    vec![vec![truth], vec![distractor]]
                } else {
                    vec![vec![distractor], vec![truth]]
                };
                TaskItem {
                    context,
                    choices,
                    correct,
                }
            }
            Task::OrderPair => {
                let seq = lang.generate(24, rng);
                let context = seq[..18].to_vec();
                let correct_choice = seq[18..24].to_vec();
                let mut reversed = correct_choice.clone();
                reversed.reverse();
                if reversed == correct_choice {
                    // Palindromic draw — perturb one token to keep 2 options.
                    reversed[0] = (reversed[0] + 1) % vocab as u32;
                }
                let correct = rng.below(2);
                let choices = if correct == 0 {
                    vec![correct_choice, reversed]
                } else {
                    vec![reversed, correct_choice]
                };
                TaskItem {
                    context,
                    choices,
                    correct,
                }
            }
        }
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snip_data::LanguageConfig;

    fn lang() -> SyntheticLanguage {
        SyntheticLanguage::new(LanguageConfig::default(), 7)
    }

    #[test]
    fn items_are_well_formed() {
        let l = lang();
        for task in Task::ALL {
            let items = task.generate(&l, 20, 3);
            assert_eq!(items.len(), 20, "{task}");
            for item in &items {
                assert_eq!(item.choices.len(), task.n_choices(), "{task}");
                assert!(item.correct < item.choices.len());
                let len0 = item.choices[0].len();
                assert!(
                    item.choices.iter().all(|c| c.len() == len0),
                    "{task}: uneven choices"
                );
                assert!(!item.context.is_empty());
                let vocab = l.config().vocab as u32;
                assert!(item.context.iter().all(|&t| t < vocab));
                assert!(item.choices.iter().flatten().all(|&t| t < vocab));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let l = lang();
        let a = Task::CompletionHard.generate(&l, 5, 11);
        let b = Task::CompletionHard.generate(&l, 5, 11);
        assert_eq!(a, b);
        let c = Task::CompletionHard.generate(&l, 5, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn correct_positions_are_shuffled() {
        let l = lang();
        let items = Task::CompletionEasy.generate(&l, 40, 5);
        let mut seen = std::collections::HashSet::new();
        for item in &items {
            seen.insert(item.correct);
        }
        assert!(seen.len() >= 3, "correct answers always at {seen:?}");
    }

    #[test]
    fn induction_answer_appears_in_context() {
        let l = lang();
        let items = Task::Induction.generate(&l, 10, 9);
        for item in &items {
            let answer = item.choices[item.correct][0];
            assert!(
                item.context.contains(&answer),
                "induction answer must be recallable from context"
            );
        }
    }

    #[test]
    fn chance_levels() {
        assert_eq!(Task::CompletionEasy.chance(), 25.0);
        assert_eq!(Task::NextToken.chance(), 50.0);
    }
}
