//! Scoring-protocol tests with hand-constructed items.

use snip_data::{LanguageConfig, SyntheticLanguage};
use snip_eval::{evaluate, score_item, EvalConfig, Task, TaskItem};
use snip_nn::{Model, ModelConfig};
use snip_tensor::rng::Rng;

fn model() -> Model {
    Model::new(ModelConfig::tiny_test(), 3).unwrap()
}

#[test]
fn score_item_handles_long_contexts_by_trimming() {
    let m = model();
    let mut rng = Rng::seed_from(1);
    // Context longer than max_seq (16): must trim, not panic.
    let item = TaskItem {
        context: (0..40).map(|i| (i % 17) as u32).collect(),
        choices: vec![vec![1, 2], vec![3, 4]],
        correct: 0,
    };
    let pick = score_item(&m, &item, &mut rng);
    assert!(pick < 2);
}

#[test]
fn score_item_is_deterministic() {
    let m = model();
    let item = TaskItem {
        context: vec![1, 2, 3, 4],
        choices: vec![vec![5, 6], vec![7, 8], vec![9, 10], vec![11, 12]],
        correct: 2,
    };
    let a = score_item(&m, &item, &mut Rng::seed_from(0));
    let b = score_item(&m, &item, &mut Rng::seed_from(99));
    // Forward passes use deterministic rounding; the rng only matters for
    // stochastic gradient rounding, which scoring never does.
    assert_eq!(a, b);
}

#[test]
fn single_token_choices_work() {
    let m = model();
    let mut rng = Rng::seed_from(2);
    let item = TaskItem {
        context: vec![3, 1, 4],
        choices: vec![vec![0], vec![16]],
        correct: 1,
    };
    let pick = score_item(&m, &item, &mut rng);
    assert!(pick < 2);
}

#[test]
fn report_covers_all_suites_with_valid_ranges() {
    let m = model();
    let lang = SyntheticLanguage::new(
        LanguageConfig {
            vocab: 17,
            ..Default::default()
        },
        5,
    );
    let report = evaluate(
        &m,
        &lang,
        &EvalConfig {
            items_per_task: 6,
            seed: 6,
        },
    );
    assert_eq!(report.scores.len(), Task::ALL.len());
    for s in &report.scores {
        assert!(
            (0.0..=100.0).contains(&s.accuracy),
            "{}: {}",
            s.task,
            s.accuracy
        );
        assert_eq!(s.n_items, 6);
    }
    assert!((0.0..=100.0).contains(&report.average()));
}

#[test]
fn tasks_with_vocabulary_of_two_do_not_loop_forever() {
    // Distractor sampling loops `while d == truth`; a tiny vocab must still
    // terminate.
    let lang = SyntheticLanguage::new(
        LanguageConfig {
            vocab: 2,
            n_states: 2,
            ..Default::default()
        },
        1,
    );
    let items = Task::NextToken.generate(&lang, 4, 1);
    assert_eq!(items.len(), 4);
    for item in items {
        assert_ne!(item.choices[0], item.choices[1]);
    }
}
