//! Exhaustive gradient verification of the full model in exact (f32) mode,
//! plus structural invariants of the transformer.

use proptest::prelude::*;
use snip_nn::batch::Batch;
use snip_nn::config::ModelConfig;
use snip_nn::model::{Model, StepOptions};
use snip_nn::LayerKind;
use snip_tensor::rng::Rng;

fn setup(seed: u64) -> (Model, Batch, Rng) {
    let cfg = ModelConfig::tiny_test();
    let mut model = Model::new(cfg, seed).unwrap();
    model.set_exact_mode(true);
    let mut r = Rng::seed_from(seed ^ 0xABCD);
    let vocab = model.config().vocab_size;
    let seqs: Vec<Vec<u32>> = (0..2)
        .map(|_| (0..9).map(|_| r.below(vocab) as u32).collect())
        .collect();
    let batch = Batch::from_sequences(&seqs, 8);
    (model, batch, Rng::seed_from(seed))
}

/// Central-difference check of dL/dθ for one entry of one named parameter.
fn check_param_entry(seed: u64, name: &str, idx: (usize, usize)) {
    let (mut model, batch, mut rng) = setup(seed);
    model.zero_grads();
    let _ = model.step(&batch, &mut rng, &StepOptions::train());
    let mut analytic = None;
    model.visit_params_mut(&mut |p| {
        if p.name() == name {
            analytic = Some(p.grad()[idx] as f64);
        }
    });
    let analytic = analytic.unwrap_or_else(|| panic!("no parameter named {name}"));

    let h = 1e-2f32;
    let mut perturbed = |delta: f32| -> f64 {
        let mut m = model.clone();
        m.visit_params_mut(&mut |p| {
            if p.name() == name {
                p.value_mut()[idx] += delta;
            }
        });
        m.forward_loss(&batch, &mut rng)
    };
    let fd = (perturbed(h) - perturbed(-h)) / (2.0 * h as f64);
    assert!(
        (fd - analytic).abs() < 2e-2 * (1.0 + analytic.abs()),
        "{name}[{idx:?}]: fd={fd} analytic={analytic}"
    );
}

#[test]
fn gradient_check_every_layer_kind() {
    // One weight entry in each of the seven linear kinds, in both blocks.
    for block in 0..2 {
        for kind in LayerKind::ALL {
            let name = format!("block{block}.{}", kind.label().to_lowercase());
            check_param_entry(100 + block as u64, &name, (1, 2));
        }
    }
}

#[test]
fn gradient_check_norm_gains_and_embedding() {
    check_param_entry(7, "block0.attn_norm", (0, 3));
    check_param_entry(7, "block1.mlp_norm", (0, 5));
    check_param_entry(7, "final_norm", (0, 0));
    check_param_entry(7, "embed", (2, 1));
    check_param_entry(7, "lm_head", (3, 4));
}

#[test]
fn exact_mode_round_trips() {
    let (mut model, batch, mut rng) = setup(5);
    let exact_loss = model.forward_loss(&batch, &mut rng);
    model.set_exact_mode(false);
    let bf16_loss = model.forward_loss(&batch, &mut rng);
    model.set_exact_mode(true);
    let exact_again = model.forward_loss(&batch, &mut rng);
    assert_eq!(exact_loss, exact_again);
    // BF16 rounding moves the loss, but only slightly.
    assert!((bf16_loss - exact_loss).abs() < 0.05 * exact_loss);
    assert_ne!(bf16_loss, exact_loss);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The gradient of the loss w.r.t. a random direction matches the
    /// directional finite difference (a randomized full-parameter check).
    #[test]
    fn directional_derivative_matches(seed in 0u64..500) {
        let (mut model, batch, mut rng) = setup(seed);
        model.zero_grads();
        let _ = model.step(&batch, &mut rng, &StepOptions::train());
        // Build a random direction d and compute <grad, d> while perturbing.
        let mut dir_rng = Rng::seed_from(seed ^ 0xD1);
        let mut dot = 0.0f64;
        model.visit_params_mut(&mut |p| {
            for i in 0..p.grad().len() {
                let d = dir_rng.next_gaussian() as f32 * 1e-3;
                dot += p.grad().as_slice()[i] as f64 * d as f64;
            }
        });
        let shift = |model: &Model, sign: f32, seed: u64| -> Model {
            let mut m = model.clone();
            let mut dr = Rng::seed_from(seed);
            m.visit_params_mut(&mut |p| {
                for i in 0..p.value().len() {
                    let d = dr.next_gaussian() as f32 * 1e-3;
                    p.value_mut().as_mut_slice()[i] += sign * d;
                }
            });
            m
        };
        let lp = shift(&model, 1.0, seed ^ 0xD1).forward_loss(&batch, &mut rng);
        let lm = shift(&model, -1.0, seed ^ 0xD1).forward_loss(&batch, &mut rng);
        let fd = (lp - lm) / 2.0;
        prop_assert!(
            (fd - dot).abs() < 0.05 * (1.0 + dot.abs()),
            "directional fd={fd} vs <g,d>={dot}"
        );
    }

    /// Shuffling sequence order within a batch permutes nothing about the
    /// total loss (rows are independent).
    #[test]
    fn loss_is_sequence_order_invariant(seed in 0u64..1000) {
        let cfg = ModelConfig::tiny_test();
        let mut model = Model::new(cfg.clone(), 3).unwrap();
        let mut r = Rng::seed_from(seed);
        let s1: Vec<u32> = (0..9).map(|_| r.below(cfg.vocab_size) as u32).collect();
        let s2: Vec<u32> = (0..9).map(|_| r.below(cfg.vocab_size) as u32).collect();
        let mut rng = Rng::seed_from(1);
        let a = model.forward_loss(&Batch::from_sequences(&[s1.clone(), s2.clone()], 8), &mut rng);
        let b = model.forward_loss(&Batch::from_sequences(&[s2, s1], 8), &mut rng);
        prop_assert!((a - b).abs() < 1e-6);
    }
}
