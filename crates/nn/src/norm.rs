//! RMSNorm (kept in high precision — paper §2.2 quantizes only linear layers).

use crate::param::Param;
use serde::{Deserialize, Serialize};
use snip_tensor::Tensor;

const EPS: f32 = 1e-5;

/// Root-mean-square layer normalization with a learnable gain:
/// `y = x / rms(x) ⊙ g`, `rms(x) = sqrt(mean(x²) + ε)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RmsNorm {
    gain: Param,
}

/// Saved forward state for the backward pass.
#[derive(Clone, Debug)]
pub struct RmsNormCache {
    /// Input activations.
    pub x: Tensor,
    /// Per-row `1 / rms(x)`.
    pub inv_rms: Vec<f32>,
}

impl RmsNorm {
    /// Creates an RMSNorm over `dim` features with gain initialized to 1.
    pub fn new(name: impl Into<String>, dim: usize) -> Self {
        RmsNorm {
            gain: Param::full(name, 1, dim, 1.0),
        }
    }

    /// The gain parameter.
    pub fn gain(&self) -> &Param {
        &self.gain
    }

    /// Mutable access to the gain parameter.
    pub fn gain_mut(&mut self) -> &mut Param {
        &mut self.gain
    }

    /// Forward pass over `tokens × dim` activations.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the gain dimension.
    pub fn forward(&self, x: &Tensor) -> (Tensor, RmsNormCache) {
        let (rows, cols) = x.shape();
        assert_eq!(cols, self.gain.value().cols(), "dimension mismatch");
        let g = self.gain.value().row(0);
        let mut y = Tensor::zeros(rows, cols);
        let mut inv_rms = Vec::with_capacity(rows);
        for r in 0..rows {
            let xr = x.row(r);
            let ms: f32 = xr.iter().map(|&v| v * v).sum::<f32>() / cols as f32;
            let inv = 1.0 / (ms + EPS).sqrt();
            inv_rms.push(inv);
            let yr = y.row_mut(r);
            for c in 0..cols {
                yr[c] = xr[c] * inv * g[c];
            }
        }
        (
            y,
            RmsNormCache {
                x: x.clone(),
                inv_rms,
            },
        )
    }

    /// Backward pass: returns `dx` and accumulates the gain gradient.
    pub fn backward(&mut self, dy: &Tensor, cache: &RmsNormCache) -> Tensor {
        let (rows, cols) = dy.shape();
        let g = self.gain.value().row(0);
        let mut dx = Tensor::zeros(rows, cols);
        let mut dg = vec![0.0f32; cols];
        for r in 0..rows {
            let xr = cache.x.row(r);
            let dyr = dy.row(r);
            let inv = cache.inv_rms[r];
            // s = Σ_j dy_j · g_j · x_j
            let mut s = 0.0f32;
            for c in 0..cols {
                s += dyr[c] * g[c] * xr[c];
            }
            let k = s * inv * inv * inv / cols as f32;
            let dxr = dx.row_mut(r);
            for c in 0..cols {
                dxr[c] = dyr[c] * g[c] * inv - xr[c] * k;
                dg[c] += dyr[c] * xr[c] * inv;
            }
        }
        self.gain.accumulate_grad(&Tensor::from_vec(1, cols, dg));
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snip_tensor::rng::Rng;

    #[test]
    fn output_has_unit_rms_with_unit_gain() {
        let mut rng = Rng::seed_from(31);
        let norm = RmsNorm::new("n", 32);
        let x = Tensor::randn(4, 32, 3.0, &mut rng);
        let (y, _) = norm.forward(&x);
        for r in 0..4 {
            let ms: f32 = y.row(r).iter().map(|&v| v * v).sum::<f32>() / 32.0;
            assert!((ms - 1.0).abs() < 1e-3, "row {r}: ms = {ms}");
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = Rng::seed_from(32);
        let mut norm = RmsNorm::new("n", 8);
        // non-trivial gain
        *norm.gain_mut().value_mut() = Tensor::randn(1, 8, 1.0, &mut rng).map(|v| 1.0 + 0.3 * v);
        let x = Tensor::randn(3, 8, 1.0, &mut rng);
        let r_proj = Tensor::randn(3, 8, 1.0, &mut rng);

        let (_, cache) = norm.forward(&x);
        let dx = norm.backward(&r_proj, &cache);

        let loss = |norm: &RmsNorm, x: &Tensor| -> f64 { norm.forward(x).0.mul(&r_proj).sum() };
        for &(i, j) in &[(0usize, 0usize), (1, 3), (2, 7)] {
            let h = 1e-3f32;
            let mut xp = x.clone();
            xp[(i, j)] += h;
            let mut xm = x.clone();
            xm[(i, j)] -= h;
            let fd = (loss(&norm, &xp) - loss(&norm, &xm)) / (2.0 * h as f64);
            let an = dx[(i, j)] as f64;
            assert!((fd - an).abs() < 1e-2 * (1.0 + an.abs()), "fd={fd} an={an}");
        }
    }

    #[test]
    fn gain_gradient_matches_finite_differences() {
        let mut rng = Rng::seed_from(33);
        let mut norm = RmsNorm::new("n", 6);
        let x = Tensor::randn(4, 6, 1.0, &mut rng);
        let r_proj = Tensor::randn(4, 6, 1.0, &mut rng);
        norm.gain_mut().zero_grad();
        let (_, cache) = norm.forward(&x);
        let _ = norm.backward(&r_proj, &cache);
        let dg = norm.gain().grad().clone();

        for j in [0usize, 3, 5] {
            let h = 1e-3f32;
            let mut np = norm.clone();
            np.gain_mut().value_mut()[(0, j)] += h;
            let mut nm = norm.clone();
            nm.gain_mut().value_mut()[(0, j)] -= h;
            let fd = (np.forward(&x).0.mul(&r_proj).sum() - nm.forward(&x).0.mul(&r_proj).sum())
                / (2.0 * h as f64);
            let an = dg[(0, j)] as f64;
            assert!((fd - an).abs() < 1e-2 * (1.0 + an.abs()), "fd={fd} an={an}");
        }
    }

    #[test]
    fn zero_input_is_stable() {
        let mut norm = RmsNorm::new("n", 4);
        let x = Tensor::zeros(2, 4);
        let (y, cache) = norm.forward(&x);
        assert!(y.all_finite());
        let dx = norm.backward(&Tensor::full(2, 4, 1.0), &cache);
        assert!(dx.all_finite());
    }
}
