//! Rotary positional embeddings (RoPE), applied to Q and K projections.

use serde::{Deserialize, Serialize};
use snip_tensor::Tensor;

/// Precomputed RoPE rotation tables for a maximum sequence length and head
/// dimension.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Rope {
    head_dim: usize,
    max_seq: usize,
    /// `cos[t][i]`, `sin[t][i]` for pair index `i < head_dim/2`.
    cos: Vec<Vec<f32>>,
    sin: Vec<Vec<f32>>,
}

impl Rope {
    /// Builds tables for positions `0..max_seq`.
    ///
    /// # Panics
    ///
    /// Panics if `head_dim` is odd.
    pub fn new(head_dim: usize, max_seq: usize, theta: f32) -> Self {
        assert!(head_dim.is_multiple_of(2), "head_dim must be even");
        let half = head_dim / 2;
        let mut cos = Vec::with_capacity(max_seq);
        let mut sin = Vec::with_capacity(max_seq);
        for t in 0..max_seq {
            let mut ct = Vec::with_capacity(half);
            let mut st = Vec::with_capacity(half);
            for i in 0..half {
                let freq = theta.powf(-2.0 * i as f32 / head_dim as f32);
                let angle = t as f32 * freq;
                ct.push(angle.cos());
                st.push(angle.sin());
            }
            cos.push(ct);
            sin.push(st);
        }
        Rope {
            head_dim,
            max_seq,
            cos,
            sin,
        }
    }

    /// Head dimension the tables were built for.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Rotates each row of a `seq × head_dim` tensor by its position's angle.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is wider than `head_dim` or longer than `max_seq`.
    pub fn apply(&self, x: &mut Tensor) {
        self.rotate(x, false);
    }

    /// Inverse rotation — the exact adjoint of [`Rope::apply`], used in the
    /// backward pass (rotations are orthonormal, so the adjoint is the
    /// rotation by the negated angle).
    pub fn apply_transposed(&self, x: &mut Tensor) {
        self.rotate(x, true);
    }

    fn rotate(&self, x: &mut Tensor, inverse: bool) {
        let (seq, dim) = x.shape();
        assert_eq!(dim, self.head_dim, "width mismatch");
        assert!(seq <= self.max_seq, "sequence longer than RoPE table");
        let half = dim / 2;
        for t in 0..seq {
            let row = x.row_mut(t);
            let (c, s) = (&self.cos[t], &self.sin[t]);
            for i in 0..half {
                let (a, b) = (row[2 * i], row[2 * i + 1]);
                let (ci, si) = (c[i], if inverse { -s[i] } else { s[i] });
                row[2 * i] = a * ci - b * si;
                row[2 * i + 1] = a * si + b * ci;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snip_tensor::rng::Rng;

    #[test]
    fn rotation_preserves_norm() {
        let mut rng = Rng::seed_from(41);
        let rope = Rope::new(8, 16, 10_000.0);
        let x = Tensor::randn(16, 8, 1.0, &mut rng);
        let mut y = x.clone();
        rope.apply(&mut y);
        for t in 0..16 {
            let nx: f32 = x.row(t).iter().map(|v| v * v).sum();
            let ny: f32 = y.row(t).iter().map(|v| v * v).sum();
            assert!((nx - ny).abs() < 1e-4, "t={t}");
        }
    }

    #[test]
    fn position_zero_is_identity() {
        let mut rng = Rng::seed_from(42);
        let rope = Rope::new(8, 4, 10_000.0);
        let x = Tensor::randn(1, 8, 1.0, &mut rng);
        let mut y = x.clone();
        rope.apply(&mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn inverse_rotation_round_trips() {
        let mut rng = Rng::seed_from(43);
        let rope = Rope::new(6, 12, 10_000.0);
        let x = Tensor::randn(12, 6, 1.0, &mut rng);
        let mut y = x.clone();
        rope.apply(&mut y);
        rope.apply_transposed(&mut y);
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn adjoint_property() {
        // <R x, y> == <x, Rᵀ y>
        let mut rng = Rng::seed_from(44);
        let rope = Rope::new(4, 8, 10_000.0);
        let x = Tensor::randn(8, 4, 1.0, &mut rng);
        let y = Tensor::randn(8, 4, 1.0, &mut rng);
        let mut rx = x.clone();
        rope.apply(&mut rx);
        let mut rty = y.clone();
        rope.apply_transposed(&mut rty);
        let lhs = snip_tensor::ops::dot(rx.as_slice(), y.as_slice());
        let rhs = snip_tensor::ops::dot(x.as_slice(), rty.as_slice());
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn relative_position_property() {
        // RoPE inner products depend only on relative position: the dot of
        // rotated vectors at (t1, t2) equals that at (t1+d, t2+d).
        let rope = Rope::new(4, 32, 10_000.0);
        let q = vec![0.3f32, -0.7, 1.1, 0.2];
        let k = vec![-0.5f32, 0.4, 0.9, -1.3];
        let dot_at = |tq: usize, tk: usize| -> f32 {
            let mut qq = Tensor::zeros(tq + 1, 4);
            qq.row_mut(tq).copy_from_slice(&q);
            let mut kk = Tensor::zeros(tk + 1, 4);
            kk.row_mut(tk).copy_from_slice(&k);
            rope.apply(&mut qq);
            rope.apply(&mut kk);
            qq.row(tq).iter().zip(kk.row(tk)).map(|(a, b)| a * b).sum()
        };
        let d1 = dot_at(5, 3);
        let d2 = dot_at(9, 7);
        assert!((d1 - d2).abs() < 1e-4, "{d1} vs {d2}");
    }
}
