//! Model configurations.
//!
//! The paper evaluates TinyLlama-1B, OpenLlama-3B/7B and an industry 70B
//! model. Full-width pretraining is a multi-thousand-GPU-hour workload, so
//! this reproduction keeps each model's *depth and block structure* (the
//! decision space SNIP optimizes over: layer id × layer type) while shrinking
//! widths so CPU training completes in minutes. See DESIGN.md §1 for the
//! substitution rationale.

use serde::{Deserialize, Serialize};

/// Hyperparameters of a Llama-like decoder-only transformer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name, e.g. `"tinyllama-1b-sim"`.
    pub name: String,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Hidden (model) dimension.
    pub hidden: usize,
    /// Number of transformer blocks.
    pub n_layers: usize,
    /// Number of attention heads (`hidden % n_heads == 0`).
    pub n_heads: usize,
    /// SwiGLU intermediate dimension.
    pub ffn_hidden: usize,
    /// Maximum sequence length (RoPE tables are sized for this).
    pub max_seq: usize,
    /// RoPE base frequency.
    pub rope_theta: f32,
    /// Scale-group length for quantization (tile length / block side).
    /// The paper uses 128 on full-width models; scaled-down configs shrink
    /// it with the hidden dimension so group-wise scaling stays meaningful.
    pub quant_group: usize,
}

impl ModelConfig {
    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.n_heads
    }

    /// Number of quantizable linear layers (7 per block: Q K V O Gate Up Down).
    pub fn n_linear_layers(&self) -> usize {
        self.n_layers * crate::layers::LayerKind::COUNT
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        let h = self.hidden;
        let f = self.ffn_hidden;
        let v = self.vocab_size;
        let block = 4 * h * h + 3 * h * f + 2 * h; // linears + 2 norms
        v * h + self.n_layers * block + h + h * v // embed + blocks + final norm + lm head
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.hidden == 0 || self.n_layers == 0 || self.vocab_size == 0 {
            return Err("dimensions must be positive".into());
        }
        if self.n_heads == 0 || !self.hidden.is_multiple_of(self.n_heads) {
            return Err(format!(
                "hidden ({}) must be divisible by n_heads ({})",
                self.hidden, self.n_heads
            ));
        }
        if !self.head_dim().is_multiple_of(2) {
            return Err("head_dim must be even for RoPE".into());
        }
        if self.quant_group == 0 {
            return Err("quant_group must be positive".into());
        }
        Ok(())
    }

    /// Tiny 2-block config for unit tests (fast gradient checks).
    pub fn tiny_test() -> Self {
        ModelConfig {
            name: "tiny-test".into(),
            vocab_size: 17,
            hidden: 16,
            n_layers: 2,
            n_heads: 2,
            ffn_hidden: 24,
            max_seq: 16,
            rope_theta: 10_000.0,
            quant_group: 8,
        }
    }

    /// TinyLlama-1B stand-in: same 22-layer depth as the real model
    /// (Fig. 7/10/11 plot 22 layer rows), scaled-down width.
    pub fn tinyllama_1b_sim() -> Self {
        ModelConfig {
            name: "tinyllama-1b-sim".into(),
            vocab_size: 64,
            hidden: 32,
            n_layers: 22,
            n_heads: 4,
            ffn_hidden: 88, // same 2.75× expansion as TinyLlama
            max_seq: 64,
            rope_theta: 10_000.0,
            quant_group: 16,
        }
    }

    /// OpenLlama-3B stand-in: 26 blocks.
    pub fn openllama_3b_sim() -> Self {
        ModelConfig {
            name: "openllama-3b-sim".into(),
            vocab_size: 64,
            hidden: 32,
            n_layers: 26,
            n_heads: 4,
            ffn_hidden: 88,
            max_seq: 64,
            rope_theta: 10_000.0,
            quant_group: 16,
        }
    }

    /// OpenLlama-7B stand-in: 32 blocks.
    pub fn openllama_7b_sim() -> Self {
        ModelConfig {
            name: "openllama-7b-sim".into(),
            vocab_size: 64,
            hidden: 32,
            n_layers: 32,
            n_heads: 4,
            ffn_hidden: 88,
            max_seq: 64,
            rope_theta: 10_000.0,
            quant_group: 16,
        }
    }

    /// Industry 70B stand-in: the paper's 80-block dense model (Fig. 9,
    /// Table 3), narrow width.
    pub fn llama_70b_sim() -> Self {
        ModelConfig {
            name: "llama-70b-sim".into(),
            vocab_size: 64,
            hidden: 24,
            n_layers: 80,
            n_heads: 4,
            ffn_hidden: 64,
            max_seq: 64,
            rope_theta: 10_000.0,
            quant_group: 12,
        }
    }

    /// Looks a config up by its paper-facing name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "tiny-test" => Some(Self::tiny_test()),
            "tinyllama-1b-sim" => Some(Self::tinyllama_1b_sim()),
            "openllama-3b-sim" => Some(Self::openllama_3b_sim()),
            "openllama-7b-sim" => Some(Self::openllama_7b_sim()),
            "llama-70b-sim" => Some(Self::llama_70b_sim()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_configs_are_valid() {
        for cfg in [
            ModelConfig::tiny_test(),
            ModelConfig::tinyllama_1b_sim(),
            ModelConfig::openllama_3b_sim(),
            ModelConfig::openllama_7b_sim(),
            ModelConfig::llama_70b_sim(),
        ] {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn depths_match_paper_models() {
        assert_eq!(ModelConfig::tinyllama_1b_sim().n_layers, 22);
        assert_eq!(ModelConfig::openllama_3b_sim().n_layers, 26);
        assert_eq!(ModelConfig::openllama_7b_sim().n_layers, 32);
        assert_eq!(ModelConfig::llama_70b_sim().n_layers, 80);
    }

    #[test]
    fn linear_layer_count() {
        assert_eq!(ModelConfig::tinyllama_1b_sim().n_linear_layers(), 22 * 7);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = ModelConfig::tiny_test();
        c.n_heads = 3; // 16 % 3 != 0
        assert!(c.validate().is_err());
        let mut c = ModelConfig::tiny_test();
        c.hidden = 0;
        assert!(c.validate().is_err());
        let mut c = ModelConfig::tiny_test();
        c.quant_group = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn by_name_round_trips() {
        for name in [
            "tiny-test",
            "tinyllama-1b-sim",
            "openllama-3b-sim",
            "openllama-7b-sim",
            "llama-70b-sim",
        ] {
            assert_eq!(ModelConfig::by_name(name).unwrap().name, name);
        }
        assert!(ModelConfig::by_name("gpt-5").is_none());
    }

    #[test]
    fn param_count_is_plausible() {
        let c = ModelConfig::tinyllama_1b_sim();
        let p = c.param_count();
        assert!(p > 100_000 && p < 2_000_000, "params = {p}");
    }
}
