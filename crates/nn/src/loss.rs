//! Cross-entropy language-modeling loss.

use snip_tensor::{ops::softmax_rows_inplace, Tensor};

/// Mean token-level cross-entropy and its gradient w.r.t. the logits.
///
/// `logits` is `tokens × vocab`; `targets[i]` is the class index for row `i`.
/// Returns `(loss, dlogits)` where the gradient already includes the `1/N`
/// mean factor.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or a target is out of range.
///
/// # Example
///
/// ```
/// use snip_tensor::Tensor;
/// use snip_nn::loss::cross_entropy;
/// let logits = Tensor::from_vec(1, 3, vec![10.0, 0.0, 0.0]);
/// let (loss, _) = cross_entropy(&logits, &[0]);
/// assert!(loss < 1e-3); // confident & correct → tiny loss
/// ```
pub fn cross_entropy(logits: &Tensor, targets: &[u32]) -> (f64, Tensor) {
    let (n, vocab) = logits.shape();
    assert_eq!(targets.len(), n, "target count mismatch");
    assert!(n > 0, "empty batch");
    let mut probs = logits.clone();
    softmax_rows_inplace(&mut probs);
    let mut loss = 0.0f64;
    let inv_n = 1.0 / n as f32;
    for (r, &t) in targets.iter().enumerate() {
        let t = t as usize;
        assert!(t < vocab, "target {t} out of range {vocab}");
        let p = probs[(r, t)].max(1e-30);
        loss -= (p as f64).ln();
        // dlogits = (softmax − onehot) / N
        let row = probs.row_mut(r);
        for v in row.iter_mut() {
            *v *= inv_n;
        }
        row[t] -= inv_n;
    }
    (loss / n as f64, probs)
}

/// Forward-only loss (no gradient) — cheaper for evaluation.
pub fn cross_entropy_loss_only(logits: &Tensor, targets: &[u32]) -> f64 {
    let (n, vocab) = logits.shape();
    assert_eq!(targets.len(), n, "target count mismatch");
    let mut loss = 0.0f64;
    for (r, &t) in targets.iter().enumerate() {
        let t = t as usize;
        assert!(t < vocab, "target {t} out of range {vocab}");
        let row = logits.row(r);
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let logsum: f64 = row
            .iter()
            .map(|&x| ((x - max) as f64).exp())
            .sum::<f64>()
            .ln()
            + max as f64;
        loss += logsum - row[t] as f64;
    }
    loss / n as f64
}

/// Log-probability of each target token under the logits (for eval scoring).
pub fn token_log_probs(logits: &Tensor, targets: &[u32]) -> Vec<f64> {
    let (n, _) = logits.shape();
    assert_eq!(targets.len(), n, "target count mismatch");
    (0..n)
        .map(|r| {
            let row = logits.row(r);
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let logsum: f64 = row
                .iter()
                .map(|&x| ((x - max) as f64).exp())
                .sum::<f64>()
                .ln()
                + max as f64;
            row[targets[r] as usize] as f64 - logsum
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snip_tensor::rng::Rng;

    #[test]
    fn uniform_logits_give_log_vocab() {
        let logits = Tensor::zeros(4, 8);
        let (loss, _) = cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - (8f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = Rng::seed_from(71);
        let logits = Tensor::randn(3, 5, 1.0, &mut rng);
        let targets = [2u32, 0, 4];
        let (_, dlogits) = cross_entropy(&logits, &targets);
        for &(i, j) in &[(0usize, 0usize), (0, 2), (1, 4), (2, 4)] {
            let h = 1e-3f32;
            let mut p = logits.clone();
            p[(i, j)] += h;
            let mut m = logits.clone();
            m[(i, j)] -= h;
            let fd =
                (cross_entropy(&p, &targets).0 - cross_entropy(&m, &targets).0) / (2.0 * h as f64);
            let an = dlogits[(i, j)] as f64;
            assert!((fd - an).abs() < 1e-4, "fd={fd} an={an}");
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let mut rng = Rng::seed_from(72);
        let logits = Tensor::randn(4, 6, 2.0, &mut rng);
        let (_, d) = cross_entropy(&logits, &[0, 1, 2, 3]);
        for r in 0..4 {
            let s: f32 = d.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn loss_only_matches_full() {
        let mut rng = Rng::seed_from(73);
        let logits = Tensor::randn(5, 7, 1.5, &mut rng);
        let targets = [1u32, 3, 0, 6, 2];
        let (full, _) = cross_entropy(&logits, &targets);
        let lo = cross_entropy_loss_only(&logits, &targets);
        assert!((full - lo).abs() < 1e-5, "{full} vs {lo}");
    }

    #[test]
    fn token_log_probs_sum_matches_loss() {
        let mut rng = Rng::seed_from(74);
        let logits = Tensor::randn(4, 5, 1.0, &mut rng);
        let targets = [0u32, 1, 2, 3];
        let lps = token_log_probs(&logits, &targets);
        let loss = cross_entropy_loss_only(&logits, &targets);
        let mean_nll = -lps.iter().sum::<f64>() / 4.0;
        assert!((loss - mean_nll).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        let logits = Tensor::zeros(1, 3);
        let _ = cross_entropy(&logits, &[3]);
    }
}
