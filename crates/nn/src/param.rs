//! Trainable parameters.

use serde::{Deserialize, Serialize};
use snip_tensor::{rng::Rng, Tensor};

/// A trainable parameter: an FP32 master value plus its gradient accumulator.
///
/// Mixed-precision training keeps master weights in full precision (paper
/// Fig. 5, following DeepSeek-V3); quantization happens on the fly when a
/// linear layer consumes the weight.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Param {
    name: String,
    value: Tensor,
    grad: Tensor,
}

impl Param {
    /// Creates a parameter with the given initial value and a zero gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let (r, c) = value.shape();
        Param {
            name: name.into(),
            value,
            grad: Tensor::zeros(r, c),
        }
    }

    /// Gaussian-initialized parameter.
    pub fn randn(
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        std: f32,
        rng: &mut Rng,
    ) -> Self {
        Param::new(name, Tensor::randn(rows, cols, std, rng))
    }

    /// Parameter initialized to a constant (e.g. RMSNorm gains start at 1).
    pub fn full(name: impl Into<String>, rows: usize, cols: usize, value: f32) -> Self {
        Param::new(name, Tensor::full(rows, cols, value))
    }

    /// Parameter name (unique within a model).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Master value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Mutable master value (used by the optimizer).
    pub fn value_mut(&mut self) -> &mut Tensor {
        &mut self.value
    }

    /// Accumulated gradient.
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// Mutable gradient accumulator.
    pub fn grad_mut(&mut self) -> &mut Tensor {
        &mut self.grad
    }

    /// Splits into `(value, grad)` mutable borrows — the optimizer needs both.
    pub fn value_grad_mut(&mut self) -> (&mut Tensor, &Tensor) {
        (&mut self.value, &self.grad)
    }

    /// Adds `g` into the gradient accumulator.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn accumulate_grad(&mut self, g: &Tensor) {
        self.grad.add_assign(g);
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new("w", Tensor::full(2, 3, 5.0));
        assert_eq!(p.grad().shape(), (2, 3));
        assert_eq!(p.grad().frobenius_norm(), 0.0);
        assert_eq!(p.name(), "w");
        assert_eq!(p.numel(), 6);
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::new("w", Tensor::zeros(2, 2));
        let g = Tensor::full(2, 2, 1.5);
        p.accumulate_grad(&g);
        p.accumulate_grad(&g);
        assert_eq!(p.grad().as_slice(), &[3.0, 3.0, 3.0, 3.0]);
        p.zero_grad();
        assert_eq!(p.grad().frobenius_norm(), 0.0);
    }
}
