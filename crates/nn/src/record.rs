//! Per-step recording of tensors and norms (SNIP Step 1: "Collect Stats",
//! paper Fig. 6).
//!
//! When a training step runs with recording enabled, every quantizable linear
//! layer captures its input activations, weight snapshot, output gradient and
//! weight gradient, plus the Frobenius norms of everything else SNIP's
//! divergence analysis consumes (§4.2–§4.3). Recording is designed to run on
//! a *high-precision* (BF16) iteration, matching the paper's workflow.

use crate::layers::LayerId;
use snip_tensor::Tensor;

/// Everything recorded about one linear layer in one step.
#[derive(Clone, Debug, Default)]
pub struct LinearRecord {
    /// Input activations as consumed by the forward GEMM (`tokens × in`).
    pub x: Tensor,
    /// Weight snapshot (`out × in`).
    pub w: Tensor,
    /// Output gradient (`tokens × out`).
    pub dy: Tensor,
    /// Weight gradient produced this step (`out × in`).
    pub dw: Tensor,
    /// `‖Y‖_F` of the forward output.
    pub y_norm: f64,
    /// `‖∇_X L‖_F` — the input-gradient norm (used by loss divergence, §4.2).
    pub dx_norm: f64,
}

impl LinearRecord {
    /// `‖∇_W L‖_F`.
    pub fn dw_norm(&self) -> f64 {
        self.dw.frobenius_norm()
    }

    /// `‖X‖_F`.
    pub fn x_norm(&self) -> f64 {
        self.x.frobenius_norm()
    }

    /// `‖W‖_F`.
    pub fn w_norm(&self) -> f64 {
        self.w.frobenius_norm()
    }

    /// `‖∇_Y L‖_F`.
    pub fn dy_norm(&self) -> f64 {
        self.dy.frobenius_norm()
    }
}

/// A full step record: loss plus one [`LinearRecord`] per quantizable layer,
/// indexed by [`LayerId::linear_index`].
#[derive(Clone, Debug, Default)]
pub struct StepRecord {
    /// Mean token cross-entropy of the recorded step.
    pub loss: f64,
    /// Tokens in the recorded batch.
    pub ntokens: usize,
    /// Per-layer records (length = `n_layers · 7`).
    pub linears: Vec<LinearRecord>,
}

impl StepRecord {
    /// Creates an empty record with `n` linear slots.
    pub fn with_layers(n: usize) -> Self {
        StepRecord {
            loss: 0.0,
            ntokens: 0,
            linears: vec![LinearRecord::default(); n],
        }
    }

    /// Record for a specific layer.
    pub fn layer(&self, id: LayerId) -> &LinearRecord {
        &self.linears[id.linear_index()]
    }

    /// Mutable record for a specific layer.
    pub fn layer_mut(&mut self, id: LayerId) -> &mut LinearRecord {
        &mut self.linears[id.linear_index()]
    }

    /// Per-layer weight-gradient tensors, in flat-index order — what the
    /// noise-injection probes (Steps 2–3) compare against the baseline.
    pub fn weight_gradients(&self) -> Vec<&Tensor> {
        self.linears.iter().map(|l| &l.dw).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::LayerKind;

    #[test]
    fn with_layers_allocates_slots() {
        let r = StepRecord::with_layers(14);
        assert_eq!(r.linears.len(), 14);
    }

    #[test]
    fn layer_indexing() {
        let mut r = StepRecord::with_layers(14);
        let id = LayerId::new(1, LayerKind::V);
        r.layer_mut(id).y_norm = 3.5;
        assert_eq!(r.layer(id).y_norm, 3.5);
        assert_eq!(r.linears[id.linear_index()].y_norm, 3.5);
    }

    #[test]
    fn norms_computed_from_tensors() {
        let rec = LinearRecord {
            dw: Tensor::from_vec(1, 2, vec![3.0, 4.0]),
            ..Default::default()
        };
        assert!((rec.dw_norm() - 5.0).abs() < 1e-12);
        assert_eq!(rec.x_norm(), 0.0);
    }
}
