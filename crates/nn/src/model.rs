//! The full decoder-only language model with mixed-precision training steps.

use crate::batch::Batch;
use crate::block::{Block, BlockCache};
use crate::config::ModelConfig;
use crate::embedding::Embedding;
use crate::inject::{Injection, InjectionSite};
use crate::layers::LayerId;
use crate::linear::Linear;
use crate::loss::cross_entropy;
use crate::norm::RmsNorm;
use crate::param::Param;
use crate::record::StepRecord;
use serde::{Deserialize, Serialize};
use snip_quant::LinearPrecision;
use snip_tensor::{rng::Rng, Tensor};

/// Options controlling one training/evaluation step.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepOptions {
    /// Run the backward pass and accumulate gradients.
    pub backward: bool,
    /// Record per-layer tensors and norms (SNIP Step 1).
    pub record: bool,
    /// Optional noise-injection probe (SNIP Steps 2–3).
    pub injection: Option<Injection>,
}

impl StepOptions {
    /// A plain training step: backward, no recording, no injection.
    pub fn train() -> Self {
        StepOptions {
            backward: true,
            ..Default::default()
        }
    }

    /// A statistics-collection step (backward + recording).
    pub fn record() -> Self {
        StepOptions {
            backward: true,
            record: true,
            ..Default::default()
        }
    }

    /// A probe step: backward + recording + injection.
    pub fn probe(injection: Injection) -> Self {
        StepOptions {
            backward: true,
            record: true,
            injection: Some(injection),
        }
    }
}

/// Result of one step.
#[derive(Clone, Debug, Default)]
pub struct StepOutput {
    /// Mean token cross-entropy.
    pub loss: f64,
    /// Tokens processed.
    pub ntokens: usize,
    /// Per-layer record when requested.
    pub record: Option<StepRecord>,
    /// Resident bytes of the quantized linear-layer operands saved for the
    /// backward pass (measured, not estimated: subbyte precisions hold
    /// these bit-packed, BF16 holds them dense).
    pub linear_cache_bytes: usize,
    /// Wall time of the whole step (forward + backward), populated from
    /// telemetry spans when `SNIP_TRACE` collection is on; 0 when off.
    pub step_ns: u64,
    /// Wall time spent in quantizer entry points during the step (this
    /// thread only; excludes RHT rotation). 0 when collection is off.
    pub quantize_ns: u64,
    /// Wall time spent in blocked-GEMM calls dispatched from this thread
    /// during the step. 0 when collection is off.
    pub gemm_ns: u64,
}

/// A Llama-like decoder-only LM with per-layer mixed-precision linear layers.
///
/// # Example
///
/// ```
/// use snip_nn::{config::ModelConfig, model::{Model, StepOptions}, batch::Batch};
/// use snip_tensor::rng::Rng;
///
/// let cfg = ModelConfig::tiny_test();
/// let mut model = Model::new(cfg, 42).unwrap();
/// let mut rng = Rng::seed_from(7);
/// let batch = Batch::from_sequences(&[vec![1, 2, 3, 4, 5, 6, 7, 8, 9]], 8);
/// let out = model.step(&batch, &mut rng, &StepOptions::train());
/// assert!(out.loss.is_finite());
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Model {
    cfg: ModelConfig,
    embed: Embedding,
    blocks: Vec<Block>,
    final_norm: RmsNorm,
    lm_head: Linear,
}

impl Model {
    /// Builds a freshly initialized model.
    ///
    /// # Errors
    ///
    /// Returns the config-validation message if `cfg` is inconsistent.
    pub fn new(cfg: ModelConfig, seed: u64) -> Result<Self, String> {
        cfg.validate()?;
        let mut rng = Rng::seed_from(seed);
        let embed = Embedding::new("embed", cfg.vocab_size, cfg.hidden, 0.02, &mut rng);
        let blocks = (0..cfg.n_layers)
            .map(|i| Block::new(i, &cfg, &mut rng))
            .collect();
        let final_norm = RmsNorm::new("final_norm", cfg.hidden);
        let lm_head = Linear::new(
            "lm_head",
            cfg.vocab_size,
            cfg.hidden,
            1.0,
            cfg.quant_group,
            &mut rng,
        );
        Ok(Model {
            cfg,
            embed,
            blocks,
            final_norm,
            lm_head,
        })
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Access one quantizable linear layer.
    pub fn linear(&self, id: LayerId) -> &Linear {
        self.blocks[id.block].linear(id.kind)
    }

    /// Sets the precision of one quantizable linear layer (SNIP Step 6).
    pub fn set_layer_precision(&mut self, id: LayerId, p: LinearPrecision) {
        self.blocks[id.block].linear_mut(id.kind).set_precision(p);
    }

    /// Applies a full per-layer scheme, indexed by [`LayerId::linear_index`].
    ///
    /// # Panics
    ///
    /// Panics if `scheme.len() != n_layers · 7`.
    pub fn set_scheme(&mut self, scheme: &[LinearPrecision]) {
        assert_eq!(
            scheme.len(),
            self.cfg.n_linear_layers(),
            "scheme length mismatch"
        );
        for (i, &p) in scheme.iter().enumerate() {
            self.set_layer_precision(LayerId::from_linear_index(i), p);
        }
    }

    /// The current per-layer scheme.
    pub fn scheme(&self) -> Vec<LinearPrecision> {
        (0..self.cfg.n_linear_layers())
            .map(|i| self.linear(LayerId::from_linear_index(i)).precision())
            .collect()
    }

    /// Visits every trainable parameter in a fixed, deterministic order.
    pub fn visit_params_mut(&mut self, f: &mut impl FnMut(&mut Param)) {
        f(self.embed.table_mut());
        for b in &mut self.blocks {
            b.visit_params_mut(f);
        }
        f(self.final_norm.gain_mut());
        f(self.lm_head.weight_mut());
    }

    /// Index of a quantizable linear layer's weight in the
    /// [`Model::visit_params_mut`] order. Optimizers key their per-parameter
    /// state by this order, so SNIP uses it to pair a layer with its AdamW
    /// moments.
    ///
    /// Visit order: `embed`, then per block `attn_norm, Q, K, V, O, Gate,
    /// Up, Down, mlp_norm`, then `final_norm`, `lm_head`.
    pub fn param_index_of(&self, id: LayerId) -> usize {
        const PARAMS_PER_BLOCK: usize = 9; // 2 norms + 7 linears
        1 + id.block * PARAMS_PER_BLOCK + 1 + id.kind.index()
    }

    /// Switches the whole model (all block linears and the LM head) to exact
    /// f32 math — no quantization, no BF16 rounding. Gradient-check tests
    /// and FP32 reference baselines use this.
    pub fn set_exact_mode(&mut self, exact: bool) {
        for b in &mut self.blocks {
            b.set_exact_mode(exact);
        }
        self.lm_head.set_exact_mode(exact);
    }

    /// Zeroes all gradient accumulators.
    pub fn zero_grads(&mut self) {
        self.visit_params_mut(&mut |p| p.zero_grad());
    }

    /// Global gradient norm across all parameters.
    pub fn grad_norm(&mut self) -> f64 {
        let mut sq = 0.0;
        self.visit_params_mut(&mut |p| sq += p.grad().squared_sum());
        sq.sqrt()
    }

    /// Total number of scalar parameters.
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params_mut(&mut |p| n += p.numel());
        n
    }

    /// Runs one step: forward (with optional noise injection and recording),
    /// loss, and optionally backward with gradient accumulation.
    ///
    /// Gradients are *accumulated*; call [`Model::zero_grads`] between steps.
    ///
    /// # Panics
    ///
    /// Panics if the batch's sequence length exceeds `max_seq` or token ids
    /// exceed the vocabulary.
    pub fn step(&mut self, batch: &Batch, rng: &mut Rng, opts: &StepOptions) -> StepOutput {
        let (b, t) = (batch.batch_size(), batch.seq_len());
        assert!(t <= self.cfg.max_seq, "sequence longer than max_seq");
        let mut rec_storage = if opts.record {
            Some(StepRecord::with_layers(self.cfg.n_linear_layers()))
        } else {
            None
        };
        // Telemetry: snapshot this thread's quantize/GEMM time counters so
        // the step can report its own deltas (each data-parallel rank steps
        // on its own thread, so thread-local deltas attribute correctly).
        // One relaxed load when collection is off (zero-bit contract).
        let obs = snip_obs::enabled();
        let _step_span = snip_obs::span("model.step");
        let (t0, quant0, gemm0) = if obs {
            (
                snip_obs::trace::now_ns(),
                snip_obs::thread_counter_value("quant.ns"),
                snip_obs::thread_counter_value("gemm.ns"),
            )
        } else {
            (0, 0, 0)
        };
        let out = {
            let mut rec_ref: Option<&mut StepRecord> = rec_storage.as_mut();

            // ---- Forward ----
            let mut x = self.embed.forward(batch.tokens());
            let mut caches: Vec<BlockCache> = Vec::with_capacity(self.blocks.len());
            for block in &self.blocks {
                let (y, c) = block.forward(&x, b, t, rng, &mut rec_ref);
                x = y;
                caches.push(c);
            }
            // Step 3 probe: perturb the last layer's output activations.
            if let Some(inj) = opts.injection {
                if inj.site == InjectionSite::ForwardTop {
                    let noise = inj.sample(x.rows(), x.cols());
                    x.add_assign(&noise);
                }
            }
            let (hn, hn_cache) = self.final_norm.forward(&x);
            let (logits, head_cache) = self.lm_head.forward(&hn, rng);
            let (loss, dlogits) = cross_entropy(&logits, batch.targets());
            let linear_cache_bytes: usize =
                caches.iter().map(|c| c.linear_cache_bytes()).sum::<usize>()
                    + head_cache.resident_bytes();

            if !opts.backward {
                StepOutput {
                    loss,
                    ntokens: batch.num_tokens(),
                    linear_cache_bytes,
                    ..StepOutput::default()
                }
            } else {
                // ---- Backward ----
                let dhn = self.lm_head.backward(&dlogits, &head_cache, rng);
                let mut dx = self.final_norm.backward(&dhn, &hn_cache);
                // Step 2 probe: perturb the gradient entering the last layer.
                if let Some(inj) = opts.injection {
                    if inj.site == InjectionSite::BackwardTop {
                        let noise = inj.sample(dx.rows(), dx.cols());
                        dx.add_assign(&noise);
                    }
                }
                for (block, cache) in self.blocks.iter_mut().zip(caches.iter()).rev() {
                    dx = block.backward(&dx, cache, rng, &mut rec_ref);
                }
                self.embed.backward(batch.tokens(), &dx);
                StepOutput {
                    loss,
                    ntokens: batch.num_tokens(),
                    linear_cache_bytes,
                    ..StepOutput::default()
                }
            }
        };
        if let Some(rec) = rec_storage.as_mut() {
            rec.loss = out.loss;
            rec.ntokens = out.ntokens;
        }
        let (step_ns, quantize_ns, gemm_ns) = if obs {
            (
                snip_obs::trace::now_ns().saturating_sub(t0),
                snip_obs::thread_counter_value("quant.ns").saturating_sub(quant0),
                snip_obs::thread_counter_value("gemm.ns").saturating_sub(gemm0),
            )
        } else {
            (0, 0, 0)
        };
        StepOutput {
            record: rec_storage,
            step_ns,
            quantize_ns,
            gemm_ns,
            ..out
        }
    }

    /// Forward-only loss on a batch (no gradient, no recording).
    pub fn forward_loss(&mut self, batch: &Batch, rng: &mut Rng) -> f64 {
        self.step(
            batch,
            rng,
            &StepOptions {
                backward: false,
                ..Default::default()
            },
        )
        .loss
    }

    /// Logits for a flattened token window — used by the evaluation harness.
    pub fn logits(&self, tokens: &[u32], batch: usize, seq: usize, rng: &mut Rng) -> Tensor {
        assert_eq!(tokens.len(), batch * seq, "bad token count");
        assert!(seq <= self.cfg.max_seq, "sequence longer than max_seq");
        let mut x = self.embed.forward(tokens);
        for block in &self.blocks {
            let (y, _) = block.forward(&x, batch, seq, rng, &mut None);
            x = y;
        }
        let (hn, _) = self.final_norm.forward(&x);
        let (logits, _) = self.lm_head.forward(&hn, rng);
        logits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::LayerKind;
    use snip_quant::Precision;

    fn tiny_setup() -> (Model, Batch, Rng) {
        let cfg = ModelConfig::tiny_test();
        let model = Model::new(cfg, 1).unwrap();
        let rng = Rng::seed_from(2);
        let batch = Batch::from_sequences(
            &[
                vec![1, 2, 3, 4, 5, 6, 7, 8, 9],
                vec![9, 8, 7, 6, 5, 4, 3, 2, 1],
            ],
            8,
        );
        (model, batch, rng)
    }

    #[test]
    fn fp4_scheme_shrinks_the_measured_backward_cache() {
        let (mut model, batch, mut rng) = tiny_setup();
        let n = model.config().n_linear_layers();
        let bf16 = model.step(&batch, &mut rng, &StepOptions::train());
        assert!(bf16.linear_cache_bytes > 0);

        model.set_scheme(&vec![
            snip_quant::LinearPrecision::uniform(Precision::Fp4);
            n
        ]);
        let fp4 = model.step(&batch, &mut rng, &StepOptions::train());
        let ratio = bf16.linear_cache_bytes as f64 / fp4.linear_cache_bytes as f64;
        // tiny_test is a worst case for the ratio: 1×8 tiles cost 0.5 B of
        // scales per element on top of 0.5 B of codes, the LM head stays
        // high-precision (dense), and per-tensor metadata is significant on
        // 16×16 tensors. Paper-scale shapes with 128-wide groups approach
        // 8×; see the Linear-level test for the per-operand bound.
        assert!(ratio >= 2.0, "fp4 cache only {ratio}x smaller");

        model.set_scheme(&vec![
            snip_quant::LinearPrecision::uniform(Precision::Fp8);
            n
        ]);
        let fp8 = model.step(&batch, &mut rng, &StepOptions::train());
        assert!(fp4.linear_cache_bytes < fp8.linear_cache_bytes);
        assert!(fp8.linear_cache_bytes < bf16.linear_cache_bytes);
    }

    #[test]
    fn initial_loss_is_near_uniform() {
        let (mut model, batch, mut rng) = tiny_setup();
        let loss = model.forward_loss(&batch, &mut rng);
        let uniform = (model.config().vocab_size as f64).ln();
        assert!(
            (loss - uniform).abs() < 0.5,
            "loss {loss} vs ln(V) {uniform}"
        );
    }

    #[test]
    fn training_reduces_loss() {
        let (mut model, batch, mut rng) = tiny_setup();
        let initial = model.forward_loss(&batch, &mut rng);
        // Plain SGD on the same batch must overfit it.
        for _ in 0..30 {
            model.zero_grads();
            let _ = model.step(&batch, &mut rng, &StepOptions::train());
            model.visit_params_mut(&mut |p| {
                let (v, g) = p.value_grad_mut();
                v.axpy(-0.5, g);
            });
        }
        let fin = model.forward_loss(&batch, &mut rng);
        assert!(fin < initial * 0.8, "loss did not drop: {initial} -> {fin}");
    }

    #[test]
    fn full_model_gradient_check_on_embedding() {
        let (mut model, batch, mut rng) = tiny_setup();
        model.set_exact_mode(true);
        model.zero_grads();
        let _ = model.step(&batch, &mut rng, &StepOptions::train());
        let an = model.embed.table().grad()[(1, 0)] as f64;
        let h = 1e-2f32;
        let mut mp = model.clone();
        mp.embed.table_mut().value_mut()[(1, 0)] += h;
        let mut mm = model.clone();
        mm.embed.table_mut().value_mut()[(1, 0)] -= h;
        let fd = (mp.forward_loss(&batch, &mut rng) - mm.forward_loss(&batch, &mut rng))
            / (2.0 * h as f64);
        assert!((fd - an).abs() < 2e-2 * (1.0 + an.abs()), "fd={fd} an={an}");
    }

    #[test]
    fn full_model_gradient_check_on_deep_weight() {
        let (mut model, batch, mut rng) = tiny_setup();
        model.set_exact_mode(true);
        model.zero_grads();
        let _ = model.step(&batch, &mut rng, &StepOptions::train());
        let id = LayerId::new(0, LayerKind::Gate);
        let an = model.linear(id).weight().grad()[(2, 3)] as f64;
        let h = 1e-2f32;
        let mut mp = model.clone();
        mp.blocks[0]
            .linear_mut(LayerKind::Gate)
            .weight_mut()
            .value_mut()[(2, 3)] += h;
        let mut mm = model.clone();
        mm.blocks[0]
            .linear_mut(LayerKind::Gate)
            .weight_mut()
            .value_mut()[(2, 3)] -= h;
        let fd = (mp.forward_loss(&batch, &mut rng) - mm.forward_loss(&batch, &mut rng))
            / (2.0 * h as f64);
        assert!((fd - an).abs() < 2e-2 * (1.0 + an.abs()), "fd={fd} an={an}");
    }

    #[test]
    fn scheme_round_trip() {
        let (mut model, _, _) = tiny_setup();
        let n = model.config().n_linear_layers();
        let mut scheme = vec![LinearPrecision::uniform(Precision::Fp8); n];
        scheme[3] = LinearPrecision::uniform(Precision::Fp4);
        model.set_scheme(&scheme);
        assert_eq!(model.scheme(), scheme);
    }

    #[test]
    fn recording_fills_every_layer() {
        let (mut model, batch, mut rng) = tiny_setup();
        model.zero_grads();
        let out = model.step(&batch, &mut rng, &StepOptions::record());
        let rec = out.record.expect("record requested");
        assert_eq!(rec.linears.len(), model.config().n_linear_layers());
        assert_eq!(rec.ntokens, batch.num_tokens());
        assert!(rec.loss > 0.0);
        for (i, lr) in rec.linears.iter().enumerate() {
            assert!(lr.dw_norm() > 0.0, "layer {i} has no dw");
        }
    }

    #[test]
    fn forward_injection_changes_loss_backward_injection_does_not() {
        use crate::inject::{Injection, InjectionSite};
        let (mut model, batch, mut rng) = tiny_setup();
        let base = model.forward_loss(&batch, &mut rng);

        let fwd = model.step(
            &batch,
            &mut rng,
            &StepOptions::probe(Injection {
                site: InjectionSite::ForwardTop,
                epsilon: 1.0,
                seed: 9,
            }),
        );
        assert!(
            (fwd.loss - base).abs() > 1e-6,
            "forward noise must move loss"
        );

        let bwd = model.step(
            &batch,
            &mut rng,
            &StepOptions::probe(Injection {
                site: InjectionSite::BackwardTop,
                epsilon: 1.0,
                seed: 9,
            }),
        );
        assert!(
            (bwd.loss - base).abs() < 1e-9,
            "backward noise must not change the forward loss"
        );
    }

    #[test]
    fn injection_perturbs_gradients() {
        use crate::inject::{Injection, InjectionSite};
        let (mut model, batch, mut rng) = tiny_setup();
        model.zero_grads();
        let base = model
            .step(&batch, &mut rng, &StepOptions::record())
            .record
            .unwrap();
        model.zero_grads();
        let noisy = model
            .step(
                &batch,
                &mut rng,
                &StepOptions::probe(Injection {
                    site: InjectionSite::BackwardTop,
                    epsilon: 0.5,
                    seed: 11,
                }),
            )
            .record
            .unwrap();
        // Early-layer gradients must differ from baseline.
        let id = LayerId::new(0, LayerKind::Q).linear_index();
        let diff = base.linears[id].dw.distance(&noisy.linears[id].dw);
        assert!(diff > 0.0, "probe left gradients unchanged");
    }

    #[test]
    fn logits_shape() {
        let (model, batch, mut rng) = tiny_setup();
        let logits = model.logits(batch.tokens(), 2, 8, &mut rng);
        assert_eq!(logits.shape(), (16, model.config().vocab_size));
    }

    #[test]
    fn serde_round_trip_preserves_behaviour() {
        let (mut model, batch, rng) = tiny_setup();
        let json = serde_json::to_string(&model).unwrap();
        let mut restored: Model = serde_json::from_str(&json).unwrap();
        let a = model.forward_loss(&batch, &mut rng.clone());
        let b = restored.forward_loss(&batch, &mut rng.clone());
        assert_eq!(a, b);
    }
}
