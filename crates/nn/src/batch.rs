//! Training batches: flattened `(batch · seq)` token windows with next-token
//! targets.

use serde::{Deserialize, Serialize};

/// A batch of token windows for language-model training.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Batch {
    tokens: Vec<u32>,
    targets: Vec<u32>,
    batch_size: usize,
    seq_len: usize,
}

impl Batch {
    /// Creates a batch from flattened inputs and targets.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths don't equal `batch_size · seq_len`.
    pub fn new(tokens: Vec<u32>, targets: Vec<u32>, batch_size: usize, seq_len: usize) -> Self {
        assert_eq!(
            tokens.len(),
            batch_size * seq_len,
            "bad token buffer length"
        );
        assert_eq!(
            targets.len(),
            batch_size * seq_len,
            "bad target buffer length"
        );
        Batch {
            tokens,
            targets,
            batch_size,
            seq_len,
        }
    }

    /// Builds a batch from contiguous sequences: inputs are `seq[..n-1]`,
    /// targets are `seq[1..]` — each sequence must have `seq_len + 1` tokens.
    ///
    /// # Panics
    ///
    /// Panics if any sequence is not `seq_len + 1` long.
    pub fn from_sequences(sequences: &[Vec<u32>], seq_len: usize) -> Self {
        let batch_size = sequences.len();
        let mut tokens = Vec::with_capacity(batch_size * seq_len);
        let mut targets = Vec::with_capacity(batch_size * seq_len);
        for s in sequences {
            assert_eq!(s.len(), seq_len + 1, "sequence must be seq_len + 1 tokens");
            tokens.extend_from_slice(&s[..seq_len]);
            targets.extend_from_slice(&s[1..]);
        }
        Batch::new(tokens, targets, batch_size, seq_len)
    }

    /// Flattened input tokens (`batch · seq`).
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// Flattened target tokens.
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Number of sequences.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Window length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Total token count (`batch · seq`).
    pub fn num_tokens(&self) -> usize {
        self.tokens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sequences_shifts_targets() {
        let b = Batch::from_sequences(&[vec![1, 2, 3, 4], vec![5, 6, 7, 8]], 3);
        assert_eq!(b.tokens(), &[1, 2, 3, 5, 6, 7]);
        assert_eq!(b.targets(), &[2, 3, 4, 6, 7, 8]);
        assert_eq!(b.batch_size(), 2);
        assert_eq!(b.seq_len(), 3);
        assert_eq!(b.num_tokens(), 6);
    }

    #[test]
    #[should_panic(expected = "bad token buffer length")]
    fn length_validation() {
        let _ = Batch::new(vec![1, 2, 3], vec![1, 2, 3], 2, 2);
    }
}
