//! Training-memory accounting.
//!
//! The paper motivates its 70B experiment budget with a memory argument
//! (§6.1): *"Even excluding activations, training a 70B model requires
//! approximately 1120 GB of GPU memory solely for model weights, gradients,
//! and optimizer states"* — the classic ZeRO accounting of 16 bytes per
//! parameter under BF16 mixed precision (2 B weights + 2 B gradients +
//! 4 B FP32 master copy + 4 B + 4 B AdamW moments). It also notes (§2.2)
//! that *"storing weights in FP4/FP8 also reduces HBM storage cost, which is
//! the main bottleneck in large-scale LLM training."*
//!
//! This module makes both claims computable: a per-parameter state recipe,
//! a whole-model breakdown (optionally with activations via the Megatron
//! per-layer activation formula), and the scale-factor overhead of
//! group-wise quantization (§2.3) so FP4/FP8 storage savings are reported
//! honestly, scales included. The `memory_overhead` experiment binary
//! regenerates the paper's numbers from these functions.

use crate::config::ModelConfig;
use serde::{Deserialize, Serialize};

/// Bytes per gigabyte in vendor marketing units (the paper's "1120 GB" is
/// decimal: 70e9 params × 16 B = 1.12e12 B).
pub const BYTES_PER_GB: f64 = 1e9;

/// Bytes **per parameter** held by each persistent training-state component.
///
/// Fractional values are allowed: subbyte formats store 0.5 B/param, and
/// group-wise scale factors amortize to fractions of a byte.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StateBytes {
    /// Working weights (the copy GEMMs read).
    pub weights: f64,
    /// Gradient accumulators.
    pub grads: f64,
    /// FP32 master weights (Fig. 5; DeepSeek-V3 recipe).
    pub master: f64,
    /// AdamW first moment `m`.
    pub moment1: f64,
    /// AdamW second moment `v`.
    pub moment2: f64,
}

impl StateBytes {
    /// The standard BF16 mixed-precision recipe: BF16 weights and gradients,
    /// FP32 master weights and AdamW moments — 16 B/param, the ZeRO
    /// accounting behind the paper's 1120 GB figure.
    pub const fn mixed_precision_bf16() -> Self {
        StateBytes {
            weights: 2.0,
            grads: 2.0,
            master: 4.0,
            moment1: 4.0,
            moment2: 4.0,
        }
    }

    /// Pure FP32 training (no mixed precision): 4 B weights + 4 B grads +
    /// AdamW moments, no separate master copy.
    pub const fn fp32() -> Self {
        StateBytes {
            weights: 4.0,
            grads: 4.0,
            master: 0.0,
            moment1: 4.0,
            moment2: 4.0,
        }
    }

    /// Replaces the working-weight storage with a `bits`-wide format plus
    /// the amortized scale overhead of one f32 scale per `group_elems`
    /// elements (§2.2's FP4/FP8 HBM saving, §2.3's scaling granularity).
    pub fn with_quantized_weights(self, bits: u32, group_elems: usize) -> Self {
        assert!(group_elems > 0, "scale group must be non-empty");
        StateBytes {
            weights: bits as f64 / 8.0 + scale_overhead_bytes_per_param(group_elems),
            ..self
        }
    }

    /// Replaces both AdamW moments with a `bits`-wide packed format plus
    /// the amortized f32-scale overhead of one scale per `group_elems`
    /// elements — the FP8-LM-style optimizer-state saving
    /// (`snip_optim::MomentPrecision::PackedFp8` is `bits = 8`,
    /// `group_elems = 128`). Master weights are untouched (paper §4.3.2).
    pub fn with_quantized_moments(self, bits: u32, group_elems: usize) -> Self {
        assert!(group_elems > 0, "scale group must be non-empty");
        let per_moment = bits as f64 / 8.0 + scale_overhead_bytes_per_param(group_elems);
        StateBytes {
            moment1: per_moment,
            moment2: per_moment,
            ..self
        }
    }

    /// Total persistent bytes per parameter.
    pub fn per_param(&self) -> f64 {
        self.weights + self.grads + self.master + self.moment1 + self.moment2
    }
}

/// Amortized bytes per parameter spent on f32 scale factors when each scale
/// covers `group_elems` elements (128×128 blocks → 6.1e-5 B; 1×128 tiles →
/// 0.03125 B).
pub fn scale_overhead_bytes_per_param(group_elems: usize) -> f64 {
    4.0 / group_elems as f64
}

/// A model-level memory breakdown, in bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryBreakdown {
    /// Working weights.
    pub weights: f64,
    /// Gradient accumulators.
    pub grads: f64,
    /// FP32 master weights.
    pub master: f64,
    /// AdamW moments (`m` + `v`).
    pub optimizer: f64,
    /// Saved activations for backward (0 unless requested).
    pub activations: f64,
}

impl MemoryBreakdown {
    /// Persistent model states only (the paper's "excluding activations").
    pub fn model_states(&self) -> f64 {
        self.weights + self.grads + self.master + self.optimizer
    }

    /// Everything, activations included.
    pub fn total(&self) -> f64 {
        self.model_states() + self.activations
    }

    /// Converts a byte quantity to decimal gigabytes.
    pub fn gb(bytes: f64) -> f64 {
        bytes / BYTES_PER_GB
    }
}

/// Memory model for a parameter count (paper-scale models are described by
/// their true parameter counts, not by instantiable configs).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    n_params: u64,
}

impl MemoryModel {
    /// A model with `n_params` parameters.
    pub fn from_params(n_params: u64) -> Self {
        MemoryModel { n_params }
    }

    /// Accounts for one of this repository's simulator configs.
    pub fn from_config(cfg: &ModelConfig) -> Self {
        MemoryModel {
            n_params: cfg.param_count() as u64,
        }
    }

    /// The parameter count.
    pub fn n_params(&self) -> u64 {
        self.n_params
    }

    /// Persistent-state breakdown under a per-parameter recipe.
    pub fn breakdown(&self, recipe: &StateBytes) -> MemoryBreakdown {
        let n = self.n_params as f64;
        MemoryBreakdown {
            weights: n * recipe.weights,
            grads: n * recipe.grads,
            master: n * recipe.master,
            optimizer: n * (recipe.moment1 + recipe.moment2),
            activations: 0.0,
        }
    }

    /// Persistent model-state bytes under a recipe (convenience).
    pub fn model_state_bytes(&self, recipe: &StateBytes) -> f64 {
        self.breakdown(recipe).model_states()
    }
}

/// Saved-activation bytes per transformer block for one microbatch, using
/// the Megatron-LM estimate (Korthikanti et al.): a Llama-style block stores
/// `s·b·h·34 + 5·a·s²·b` bytes at 2 B/element, where `s` = sequence length,
/// `b` = microbatch size, `h` = hidden size and `a` = attention heads. The
/// `5·a·s²` term is the attention-probability storage that FlashAttention
/// removes; pass `flash = true` to drop it.
pub fn activation_bytes_per_block(cfg: &ModelConfig, batch: usize, seq: usize, flash: bool) -> f64 {
    let s = seq as f64;
    let b = batch as f64;
    let h = cfg.hidden as f64;
    let a = cfg.n_heads as f64;
    let linear_term = 34.0 * s * b * h;
    let attn_term = if flash { 0.0 } else { 5.0 * a * s * s * b };
    linear_term + attn_term
}

/// Saved-activation bytes for the whole model (all blocks; embeddings and
/// the LM head are excluded as in the Megatron estimate).
pub fn activation_bytes(cfg: &ModelConfig, batch: usize, seq: usize, flash: bool) -> f64 {
    cfg.n_layers as f64 * activation_bytes_per_block(cfg, batch, seq, flash)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_70b_figure_reproduced() {
        // §6.1: "training a 70B model requires approximately 1120 GB of GPU
        // memory solely for model weights, gradients, and optimizer states".
        let m = MemoryModel::from_params(70_000_000_000);
        let gb = MemoryBreakdown::gb(m.model_state_bytes(&StateBytes::mixed_precision_bf16()));
        assert!((gb - 1120.0).abs() < 1e-6, "got {gb} GB");
    }

    #[test]
    fn mixed_precision_recipe_is_16_bytes() {
        assert_eq!(StateBytes::mixed_precision_bf16().per_param(), 16.0);
        assert_eq!(StateBytes::fp32().per_param(), 16.0); // same total, no master
    }

    #[test]
    fn fp8_weights_halve_and_fp4_quarter_weight_storage() {
        // §2.2: FP4/FP8 weight storage reduces HBM cost. With the paper's
        // 128×128 weight blocks the scale overhead is negligible.
        let bf16 = StateBytes::mixed_precision_bf16();
        let fp8 = bf16.with_quantized_weights(8, 128 * 128);
        let fp4 = bf16.with_quantized_weights(4, 128 * 128);
        assert!((bf16.weights / fp8.weights - 2.0).abs() < 1e-3);
        assert!((bf16.weights / fp4.weights - 4.0).abs() < 2e-3);
        // Total state shrinks by the weight delta only.
        assert!(fp4.per_param() > 14.0 && fp4.per_param() < bf16.per_param());
    }

    #[test]
    fn tile_scale_overhead_is_under_one_percent_of_state() {
        // 1×128 tiles: 4 B per 128 elements = 0.03125 B/param — well under
        // 1% of the 16 B/param state (the §6.3 memory-overhead regime).
        let per_param = scale_overhead_bytes_per_param(128);
        assert!((per_param - 0.03125).abs() < 1e-12);
        assert!(per_param / StateBytes::mixed_precision_bf16().per_param() < 0.01);
    }

    #[test]
    fn fp8_moments_shrink_optimizer_state_4x() {
        // FP8-LM-style packed moments: 8 B/param of AdamW state becomes
        // ~2 B + tile-scale overhead; total state drops from 16 to ~10.06.
        let bf16 = StateBytes::mixed_precision_bf16();
        let fp8m = bf16.with_quantized_moments(8, 128);
        let moments = |s: &StateBytes| s.moment1 + s.moment2;
        assert!((moments(&bf16) / moments(&fp8m) - 4.0).abs() < 0.15);
        assert!(fp8m.master == bf16.master, "master weights stay f32");
        assert!((fp8m.per_param() - (16.0 - 8.0 + 2.0625)).abs() < 1e-9);
    }

    #[test]
    fn breakdown_components_sum() {
        let m = MemoryModel::from_params(1_000_000);
        let b = m.breakdown(&StateBytes::mixed_precision_bf16());
        assert_eq!(b.weights, 2e6);
        assert_eq!(b.grads, 2e6);
        assert_eq!(b.master, 4e6);
        assert_eq!(b.optimizer, 8e6);
        assert_eq!(b.model_states(), 16e6);
        assert_eq!(b.total(), 16e6); // no activations requested
    }

    #[test]
    fn from_config_matches_param_count() {
        let cfg = ModelConfig::tinyllama_1b_sim();
        let m = MemoryModel::from_config(&cfg);
        assert_eq!(m.n_params(), cfg.param_count() as u64);
    }

    #[test]
    fn activation_formula_hand_check() {
        // tiny_test: h=16, a=2. One block, batch 3, seq 8, no flash:
        // 34·8·3·16 + 5·2·64·3 = 13056 + 1920.
        let cfg = ModelConfig::tiny_test();
        let per_block = activation_bytes_per_block(&cfg, 3, 8, false);
        assert_eq!(per_block, 13056.0 + 1920.0);
        // Flash drops the quadratic term.
        assert_eq!(activation_bytes_per_block(&cfg, 3, 8, true), 13056.0);
        // Whole model = n_layers ×.
        assert_eq!(activation_bytes(&cfg, 3, 8, false), 2.0 * per_block);
    }

    #[test]
    fn activations_scale_linearly_in_batch_and_quadratically_in_seq() {
        let cfg = ModelConfig::tiny_test();
        let base = activation_bytes(&cfg, 1, 16, false);
        assert_eq!(activation_bytes(&cfg, 2, 16, false), 2.0 * base);
        // Doubling seq more than doubles (quadratic attention term).
        assert!(activation_bytes(&cfg, 1, 32, false) > 2.0 * base);
    }

    #[test]
    #[should_panic(expected = "scale group must be non-empty")]
    fn zero_group_rejected() {
        let _ = StateBytes::mixed_precision_bf16().with_quantized_weights(4, 0);
    }
}
