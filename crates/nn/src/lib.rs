//! # snip-nn
//!
//! Llama-like transformer substrate for SNIP: a decoder-only language model
//! with *manual* forward/backward passes and mixed-precision linear layers
//! (paper Fig. 4–5).
//!
//! Everything SNIP needs from the model is first-class here:
//!
//! * per-layer precision assignment ([`model::Model::set_scheme`]),
//! * statistics recording on a training step ([`model::StepOptions::record`],
//!   SNIP Step 1),
//! * Gaussian noise-injection probes ([`inject::Injection`], SNIP Steps 2–3),
//! * FP32 master weights with explicit gradient accumulators
//!   ([`param::Param`]).
//!
//! # Example
//!
//! ```
//! use snip_nn::{batch::Batch, config::ModelConfig, model::{Model, StepOptions}};
//! use snip_quant::{LinearPrecision, Precision};
//! use snip_tensor::rng::Rng;
//!
//! let mut model = Model::new(ModelConfig::tiny_test(), 0).unwrap();
//! // Drop every linear layer to FP4:
//! let scheme = vec![LinearPrecision::uniform(Precision::Fp4); model.config().n_linear_layers()];
//! model.set_scheme(&scheme);
//! let batch = Batch::from_sequences(&[vec![0, 1, 2, 3, 4, 5, 6, 7, 8]], 8);
//! let mut rng = Rng::seed_from(1);
//! let out = model.step(&batch, &mut rng, &StepOptions::train());
//! assert!(out.loss.is_finite());
//! ```

pub mod attention;
pub mod batch;
pub mod block;
pub mod config;
pub mod embedding;
pub mod inject;
pub mod layers;
pub mod linear;
pub mod loss;
pub mod memory;
pub mod model;
pub mod norm;
pub mod param;
pub mod record;
pub mod rope;

pub use batch::Batch;
pub use config::ModelConfig;
pub use layers::{LayerId, LayerKind};
pub use linear::{Linear, LinearCache, QCache};
pub use model::{Model, StepOptions, StepOutput};
