//! Llama transformer block (paper Fig. 4): RMSNorm → Q/K/V → attention → O,
//! then RMSNorm → Gate/Up → SwiGLU → Down, with residual connections.

use crate::attention::{Attention, AttentionCache};
use crate::config::ModelConfig;
use crate::layers::{LayerId, LayerKind};
use crate::linear::{Linear, LinearCache};
use crate::norm::{RmsNorm, RmsNormCache};
use crate::param::Param;
use crate::record::StepRecord;
use serde::{Deserialize, Serialize};
use snip_tensor::{
    ops::{silu, silu_grad},
    rng::Rng,
    Tensor,
};

/// One transformer block with its seven quantizable linear layers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Block {
    index: usize,
    attn_norm: RmsNorm,
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    attention: Attention,
    mlp_norm: RmsNorm,
    gate: Linear,
    up: Linear,
    down: Linear,
}

/// Saved forward state of one block.
#[derive(Clone, Debug)]
pub struct BlockCache {
    nc1: RmsNormCache,
    qc: LinearCache,
    kc: LinearCache,
    vc: LinearCache,
    ac: AttentionCache,
    oc: LinearCache,
    nc2: RmsNormCache,
    gc: LinearCache,
    uc: LinearCache,
    dc: LinearCache,
    /// Gate pre-activation output.
    gate_out: Tensor,
    /// Up projection output.
    up_out: Tensor,
}

impl BlockCache {
    /// Resident bytes of the seven saved linear-layer operand pairs — the
    /// part of the backward-pass footprint the packed representation
    /// shrinks (subbyte precisions store `qx`/`qw` bit-packed).
    pub fn linear_cache_bytes(&self) -> usize {
        [
            &self.qc, &self.kc, &self.vc, &self.oc, &self.gc, &self.uc, &self.dc,
        ]
        .iter()
        .map(|c| c.resident_bytes())
        .sum()
    }
}

impl Block {
    /// Builds block `index` of a model. Residual-writing projections (O and
    /// Down) use a `1/√(2·n_layers)` init gain for depth stability.
    pub fn new(index: usize, cfg: &ModelConfig, rng: &mut Rng) -> Self {
        let h = cfg.hidden;
        let f = cfg.ffn_hidden;
        let residual_gain = 1.0 / (2.0 * cfg.n_layers as f32).sqrt();
        let g = cfg.quant_group;
        let name = |k: &str| format!("block{index}.{k}");
        Block {
            index,
            attn_norm: RmsNorm::new(name("attn_norm"), h),
            wq: Linear::new(name("q"), h, h, 1.0, g, rng),
            wk: Linear::new(name("k"), h, h, 1.0, g, rng),
            wv: Linear::new(name("v"), h, h, 1.0, g, rng),
            wo: Linear::new(name("o"), h, h, residual_gain, g, rng),
            attention: Attention::new(cfg.n_heads, cfg.head_dim(), cfg.max_seq, cfg.rope_theta),
            mlp_norm: RmsNorm::new(name("mlp_norm"), h),
            gate: Linear::new(name("gate"), f, h, 1.0, g, rng),
            up: Linear::new(name("up"), f, h, 1.0, g, rng),
            down: Linear::new(name("down"), h, f, residual_gain, g, rng),
        }
    }

    /// Block position in the model.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Immutable access to a linear layer by kind.
    pub fn linear(&self, kind: LayerKind) -> &Linear {
        match kind {
            LayerKind::Q => &self.wq,
            LayerKind::K => &self.wk,
            LayerKind::V => &self.wv,
            LayerKind::O => &self.wo,
            LayerKind::Gate => &self.gate,
            LayerKind::Up => &self.up,
            LayerKind::Down => &self.down,
        }
    }

    /// Mutable access to a linear layer by kind.
    pub fn linear_mut(&mut self, kind: LayerKind) -> &mut Linear {
        match kind {
            LayerKind::Q => &mut self.wq,
            LayerKind::K => &mut self.wk,
            LayerKind::V => &mut self.wv,
            LayerKind::O => &mut self.wo,
            LayerKind::Gate => &mut self.gate,
            LayerKind::Up => &mut self.up,
            LayerKind::Down => &mut self.down,
        }
    }

    /// Switches every linear layer of the block to exact (f32) math.
    pub fn set_exact_mode(&mut self, exact: bool) {
        for kind in LayerKind::ALL {
            self.linear_mut(kind).set_exact_mode(exact);
        }
    }

    /// Visits every trainable parameter of the block in a fixed order.
    pub fn visit_params_mut(&mut self, f: &mut impl FnMut(&mut Param)) {
        f(self.attn_norm.gain_mut());
        for kind in LayerKind::ALL {
            f(self.linear_mut(kind).weight_mut());
        }
        f(self.mlp_norm.gain_mut());
    }

    fn fwd_linear(
        &self,
        kind: LayerKind,
        x: &Tensor,
        rng: &mut Rng,
        rec: &mut Option<&mut StepRecord>,
    ) -> (Tensor, LinearCache) {
        let lin = self.linear(kind);
        let (y, cache) = lin.forward(x, rng);
        if let Some(r) = rec {
            let lr = r.layer_mut(LayerId::new(self.index, kind));
            // Statistics read the quantized activations through the packed
            // cache; dequantization reproduces the fake-quant values bitwise.
            lr.x = cache.qx.dequantize();
            lr.w = lin.weight().value().clone();
            lr.y_norm = y.frobenius_norm();
        }
        (y, cache)
    }

    fn bwd_linear(
        &mut self,
        kind: LayerKind,
        dy: &Tensor,
        cache: &LinearCache,
        rng: &mut Rng,
        rec: &mut Option<&mut StepRecord>,
    ) -> Tensor {
        let index = self.index;
        let lin = self.linear_mut(kind);
        if rec.is_some() {
            let (dx, dw) = lin.backward_recorded(dy, cache, rng);
            let r = rec.as_mut().expect("checked above");
            let lr = r.layer_mut(LayerId::new(index, kind));
            lr.dy = dy.clone();
            lr.dw = dw;
            lr.dx_norm = dx.frobenius_norm();
            dx
        } else {
            lin.backward(dy, cache, rng)
        }
    }

    /// Forward pass over `(batch·seq) × hidden` activations.
    pub fn forward(
        &self,
        x: &Tensor,
        batch: usize,
        seq: usize,
        rng: &mut Rng,
        rec: &mut Option<&mut StepRecord>,
    ) -> (Tensor, BlockCache) {
        // Attention half.
        let (xn1, nc1) = self.attn_norm.forward(x);
        let (q, qc) = self.fwd_linear(LayerKind::Q, &xn1, rng, rec);
        let (k, kc) = self.fwd_linear(LayerKind::K, &xn1, rng, rec);
        let (v, vc) = self.fwd_linear(LayerKind::V, &xn1, rng, rec);
        let (attn_out, ac) = self.attention.forward(&q, &k, &v, batch, seq);
        let (o, oc) = self.fwd_linear(LayerKind::O, &attn_out, rng, rec);
        let x2 = x.add(&o);

        // MLP half (SwiGLU).
        let (xn2, nc2) = self.mlp_norm.forward(&x2);
        let (gate_out, gc) = self.fwd_linear(LayerKind::Gate, &xn2, rng, rec);
        let (up_out, uc) = self.fwd_linear(LayerKind::Up, &xn2, rng, rec);
        let a = gate_out.zip(&up_out, |g, u| silu(g) * u);
        let (d, dc) = self.fwd_linear(LayerKind::Down, &a, rng, rec);
        let y = x2.add(&d);

        (
            y,
            BlockCache {
                nc1,
                qc,
                kc,
                vc,
                ac,
                oc,
                nc2,
                gc,
                uc,
                dc,
                gate_out,
                up_out,
            },
        )
    }

    /// Backward pass; returns the gradient w.r.t. the block input and
    /// accumulates parameter gradients.
    pub fn backward(
        &mut self,
        dy: &Tensor,
        cache: &BlockCache,
        rng: &mut Rng,
        rec: &mut Option<&mut StepRecord>,
    ) -> Tensor {
        // y = x2 + down(a)
        let da = self.bwd_linear(LayerKind::Down, dy, &cache.dc, rng, rec);
        // a = silu(gate_out) ⊙ up_out
        let dgate = da
            .zip(&cache.up_out, |d, u| d * u)
            .zip(&cache.gate_out, |d, g| d * silu_grad(g));
        let dup = da.zip(&cache.gate_out, |d, g| d * silu(g));
        let mut dxn2 = self.bwd_linear(LayerKind::Gate, &dgate, &cache.gc, rng, rec);
        dxn2.add_assign(&self.bwd_linear(LayerKind::Up, &dup, &cache.uc, rng, rec));
        let mut dx2 = self.mlp_norm.backward(&dxn2, &cache.nc2);
        dx2.add_assign(dy); // residual path

        // x2 = x + o(attn_out)
        let dattn_out = self.bwd_linear(LayerKind::O, &dx2, &cache.oc, rng, rec);
        let (dq, dk, dv) = self.attention.backward(&dattn_out, &cache.ac);
        let mut dxn1 = self.bwd_linear(LayerKind::Q, &dq, &cache.qc, rng, rec);
        dxn1.add_assign(&self.bwd_linear(LayerKind::K, &dk, &cache.kc, rng, rec));
        dxn1.add_assign(&self.bwd_linear(LayerKind::V, &dv, &cache.vc, rng, rec));
        let mut dx = self.attn_norm.backward(&dxn1, &cache.nc1);
        dx.add_assign(&dx2); // residual path

        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snip_quant::LinearPrecision;

    fn tiny_block() -> (Block, ModelConfig, Rng) {
        let cfg = ModelConfig::tiny_test();
        let mut rng = Rng::seed_from(81);
        let block = Block::new(0, &cfg, &mut rng);
        (block, cfg, rng)
    }

    #[test]
    fn forward_preserves_shape_and_is_finite() {
        let (block, cfg, mut rng) = tiny_block();
        let x = Tensor::randn(2 * 8, cfg.hidden, 1.0, &mut rng);
        let (y, _) = block.forward(&x, 2, 8, &mut rng, &mut None);
        assert_eq!(y.shape(), x.shape());
        assert!(y.all_finite());
    }

    #[test]
    fn backward_matches_finite_differences() {
        let (mut block, cfg, mut rng) = tiny_block();
        block.set_exact_mode(true);
        let x = Tensor::randn(4, cfg.hidden, 0.5, &mut rng);
        let r = Tensor::randn(4, cfg.hidden, 0.5, &mut rng);
        let (_, cache) = block.forward(&x, 1, 4, &mut rng, &mut None);
        let dx = block.backward(&r, &cache, &mut rng, &mut None);

        let loss = |block: &Block, x: &Tensor, rng: &mut Rng| -> f64 {
            block.forward(x, 1, 4, rng, &mut None).0.mul(&r).sum()
        };
        for &(i, j) in &[(0usize, 0usize), (1, 7), (3, 15)] {
            let h = 1e-2f32;
            let mut p = x.clone();
            p[(i, j)] += h;
            let mut m = x.clone();
            m[(i, j)] -= h;
            let fd = (loss(&block, &p, &mut rng) - loss(&block, &m, &mut rng)) / (2.0 * h as f64);
            let an = dx[(i, j)] as f64;
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + an.abs()),
                "dx[{i},{j}]: fd={fd} an={an}"
            );
        }
    }

    #[test]
    fn weight_gradients_match_finite_differences() {
        let (mut block, cfg, mut rng) = tiny_block();
        block.set_exact_mode(true);
        let x = Tensor::randn(4, cfg.hidden, 0.5, &mut rng);
        let r = Tensor::randn(4, cfg.hidden, 0.5, &mut rng);
        block.visit_params_mut(&mut |p| p.zero_grad());
        let (_, cache) = block.forward(&x, 1, 4, &mut rng, &mut None);
        let _ = block.backward(&r, &cache, &mut rng, &mut None);

        // Check one weight entry in several layers, including V and Down
        // (the sensitive layers per paper Fig. 10).
        for kind in [LayerKind::V, LayerKind::Down, LayerKind::Gate, LayerKind::O] {
            let an = block.linear(kind).weight().grad()[(0, 1)] as f64;
            let h = 1e-2f32;
            let mut bp = block.clone();
            bp.linear_mut(kind).weight_mut().value_mut()[(0, 1)] += h;
            let mut bm = block.clone();
            bm.linear_mut(kind).weight_mut().value_mut()[(0, 1)] -= h;
            let lp = bp.forward(&x, 1, 4, &mut rng, &mut None).0.mul(&r).sum();
            let lm = bm.forward(&x, 1, 4, &mut rng, &mut None).0.mul(&r).sum();
            let fd = (lp - lm) / (2.0 * h as f64);
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + an.abs()),
                "{kind}: fd={fd} an={an}"
            );
        }
    }

    #[test]
    fn recording_captures_all_seven_layers() {
        let (mut block, cfg, mut rng) = tiny_block();
        let x = Tensor::randn(4, cfg.hidden, 1.0, &mut rng);
        let mut rec = StepRecord::with_layers(14);
        {
            let mut rec_ref = Some(&mut rec);
            let (y, cache) = block.forward(&x, 1, 4, &mut rng, &mut rec_ref);
            let _ = block.backward(&y, &cache, &mut rng, &mut rec_ref);
        }
        for kind in LayerKind::ALL {
            let lr = rec.layer(LayerId::new(0, kind));
            assert!(lr.x_norm() > 0.0, "{kind} x missing");
            assert!(lr.w_norm() > 0.0, "{kind} w missing");
            assert!(lr.dy_norm() > 0.0, "{kind} dy missing");
            assert!(lr.dw_norm() > 0.0, "{kind} dw missing");
            assert!(lr.y_norm > 0.0, "{kind} y_norm missing");
            assert!(lr.dx_norm > 0.0, "{kind} dx_norm missing");
        }
        // Block 1's records remain untouched.
        assert_eq!(rec.layer(LayerId::new(1, LayerKind::Q)).x_norm(), 0.0);
    }

    #[test]
    fn precision_is_per_layer() {
        use snip_quant::Precision;
        let (mut block, _, _) = tiny_block();
        block
            .linear_mut(LayerKind::V)
            .set_precision(LinearPrecision::uniform(Precision::Fp4));
        assert_eq!(
            block.linear(LayerKind::V).precision(),
            LinearPrecision::uniform(Precision::Fp4)
        );
        assert_eq!(
            block.linear(LayerKind::Q).precision(),
            LinearPrecision::default()
        );
    }
}
