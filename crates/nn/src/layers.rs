//! Identity of quantizable linear layers.
//!
//! The paper quantizes the seven linear layers of each transformer block
//! (Fig. 4): Q, K, V, O in self-attention and Gate, Up, Down in the SwiGLU
//! MLP. SNIP's decision space is indexed by `(block, kind)` pairs.

use crate::config::ModelConfig;
use serde::{Deserialize, Serialize};

/// The seven linear-layer types of a Llama transformer block (paper Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LayerKind {
    /// Query projection.
    Q,
    /// Key projection.
    K,
    /// Value projection.
    V,
    /// Attention output projection.
    O,
    /// MLP gate projection.
    Gate,
    /// MLP up projection.
    Up,
    /// MLP down projection.
    Down,
}

impl LayerKind {
    /// All kinds in canonical order (the column order of paper Figs. 7/10/11).
    pub const ALL: [LayerKind; 7] = [
        LayerKind::Q,
        LayerKind::K,
        LayerKind::V,
        LayerKind::O,
        LayerKind::Gate,
        LayerKind::Up,
        LayerKind::Down,
    ];

    /// Number of linear layer kinds per block.
    pub const COUNT: usize = 7;

    /// Position in [`LayerKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            LayerKind::Q => 0,
            LayerKind::K => 1,
            LayerKind::V => 2,
            LayerKind::O => 3,
            LayerKind::Gate => 4,
            LayerKind::Up => 5,
            LayerKind::Down => 6,
        }
    }

    /// Inverse of [`LayerKind::index`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= 7`.
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }

    /// Short label used in figures ("Q", "K", …).
    pub fn label(self) -> &'static str {
        match self {
            LayerKind::Q => "Q",
            LayerKind::K => "K",
            LayerKind::V => "V",
            LayerKind::O => "O",
            LayerKind::Gate => "Gate",
            LayerKind::Up => "Up",
            LayerKind::Down => "Down",
        }
    }

    /// Whether this is one of the attention projections.
    pub fn is_attention(self) -> bool {
        matches!(
            self,
            LayerKind::Q | LayerKind::K | LayerKind::V | LayerKind::O
        )
    }

    /// Whether this is one of the MLP projections.
    pub fn is_mlp(self) -> bool {
        !self.is_attention()
    }

    /// `(out_features, in_features)` of this layer under `cfg`.
    pub fn dims(self, cfg: &ModelConfig) -> (usize, usize) {
        let h = cfg.hidden;
        let f = cfg.ffn_hidden;
        match self {
            LayerKind::Q | LayerKind::K | LayerKind::V | LayerKind::O => (h, h),
            LayerKind::Gate | LayerKind::Up => (f, h),
            LayerKind::Down => (h, f),
        }
    }
}

impl std::fmt::Display for LayerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Identity of one quantizable linear layer: which block and which kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LayerId {
    /// Transformer block index, 0-based from the input.
    pub block: usize,
    /// Linear layer type within the block.
    pub kind: LayerKind,
}

impl LayerId {
    /// Creates a layer id.
    pub fn new(block: usize, kind: LayerKind) -> Self {
        LayerId { block, kind }
    }

    /// Flat index in `[0, n_layers * 7)`: layers of a block are contiguous.
    pub fn linear_index(&self) -> usize {
        self.block * LayerKind::COUNT + self.kind.index()
    }

    /// Inverse of [`LayerId::linear_index`].
    pub fn from_linear_index(i: usize) -> Self {
        LayerId {
            block: i / LayerKind::COUNT,
            kind: LayerKind::from_index(i % LayerKind::COUNT),
        }
    }

    /// All layer ids of a model with `n_layers` blocks, in flat-index order.
    pub fn enumerate(n_layers: usize) -> Vec<LayerId> {
        (0..n_layers * LayerKind::COUNT)
            .map(LayerId::from_linear_index)
            .collect()
    }

    /// FLOPs of this layer's three GEMMs for a step over `tokens` tokens
    /// (forward + dX + dW, each `2·M·N·K`).
    pub fn training_flops(&self, cfg: &ModelConfig, tokens: usize) -> u64 {
        let (n, k) = self.kind.dims(cfg);
        3 * 2 * tokens as u64 * n as u64 * k as u64
    }
}

impl std::fmt::Display for LayerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}.{}", self.block, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for k in LayerKind::ALL {
            assert_eq!(LayerKind::from_index(k.index()), k);
        }
        for i in 0..21 {
            assert_eq!(LayerId::from_linear_index(i).linear_index(), i);
        }
    }

    #[test]
    fn attention_mlp_partition() {
        let attn: Vec<_> = LayerKind::ALL.iter().filter(|k| k.is_attention()).collect();
        let mlp: Vec<_> = LayerKind::ALL.iter().filter(|k| k.is_mlp()).collect();
        assert_eq!(attn.len(), 4);
        assert_eq!(mlp.len(), 3);
    }

    #[test]
    fn dims_match_config() {
        let cfg = ModelConfig::tiny_test();
        assert_eq!(LayerKind::Q.dims(&cfg), (16, 16));
        assert_eq!(LayerKind::Gate.dims(&cfg), (24, 16));
        assert_eq!(LayerKind::Down.dims(&cfg), (16, 24));
    }

    #[test]
    fn enumerate_covers_all_layers() {
        let ids = LayerId::enumerate(3);
        assert_eq!(ids.len(), 21);
        assert_eq!(ids[0], LayerId::new(0, LayerKind::Q));
        assert_eq!(ids[20], LayerId::new(2, LayerKind::Down));
    }

    #[test]
    fn flops_scale_with_dims() {
        let cfg = ModelConfig::tiny_test();
        let q = LayerId::new(0, LayerKind::Q).training_flops(&cfg, 10);
        assert_eq!(q, 3 * 2 * 10 * 16 * 16);
        let gate = LayerId::new(0, LayerKind::Gate).training_flops(&cfg, 10);
        assert_eq!(gate, 3 * 2 * 10 * 24 * 16);
    }

    #[test]
    fn display_format() {
        assert_eq!(LayerId::new(3, LayerKind::Down).to_string(), "L3.Down");
    }
}
