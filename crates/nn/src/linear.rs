//! Mixed-precision linear layer (paper Fig. 5).
//!
//! The forward GEMM consumes quantized activations and weights; the two
//! backward GEMMs consume the quantized output gradient together with the
//! quantized weight (for `dX`) or quantized input (for `dW`). GEMM outputs
//! are rounded to BF16, and the FP32 master weight is only touched by the
//! optimizer:
//!
//! ```text
//!  forward:  Y  = Q_x(X) · Q_w(W)ᵀ           (output BF16)
//!  backward: dX = Q_g(dY) · Q_w(W)           (output BF16)
//!            dW = Q_g(dY)ᵀ · Q_x(X)          (output BF16, accumulated FP32)
//! ```
//!
//! These three calls — `qgemm_nt_bf16`, `qgemm_bf16`, `qgemm_tn_bf16` —
//! are the hottest loops of every training step. They dispatch into
//! `snip-tensor`'s pool-backed, cache-blocked GEMM engine with the BF16
//! output rounding fused into the tile store (bit-identical to rounding in
//! a second pass, without touching the output twice): packed operands are
//! decoded block-wise (once per block sweep, through the byte-pair table
//! for FP4), large products are split across the persistent worker pool,
//! and results are bit-identical at every pool size / `SNIP_THREADS` /
//! SIMD-backend setting — so the training trajectory never depends on the
//! machine's parallelism or instruction set.

use crate::param::Param;
use serde::{Deserialize, Serialize};
use snip_quant::{LinearPrecision, Quantizer, TensorRole};
use snip_tensor::{
    packed::{qgemm, qgemm_bf16, qgemm_nt, qgemm_nt_bf16, qgemm_tn, qgemm_tn_bf16},
    rng::Rng,
    QOperandRef, QTensor, Tensor,
};

/// A linear layer `y = x · Wᵀ` with per-operand quantization.
///
/// The weight is stored `out_features × in_features`; no bias (Llama-style).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linear {
    weight: Param,
    precision: LinearPrecision,
    quant_group: usize,
    /// When `true`, bypass all quantization and BF16 rounding (exact f32
    /// math). Used by gradient-check tests and as an FP32 reference mode.
    #[serde(default)]
    exact: bool,
}

/// A quantized GEMM operand held for the backward pass: bit-packed when the
/// operand's precision supports it (FP4/FP8 — 8× / 4× smaller than f32),
/// dense only for BF16 emulation and exact mode.
#[derive(Clone, Debug)]
pub enum QCache {
    /// Dense f32 storage (BF16-emulated or exact-mode operands).
    Dense(Tensor),
    /// Bit-packed subbyte storage with per-group scales.
    Packed(QTensor),
}

impl QCache {
    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            QCache::Dense(t) => t.shape(),
            QCache::Packed(t) => t.shape(),
        }
    }

    /// Whether the operand is stored bit-packed.
    pub fn is_packed(&self) -> bool {
        matches!(self, QCache::Packed(_))
    }

    /// A GEMM operand view (no decode for dense, on-the-fly decode for
    /// packed).
    pub fn operand(&self) -> QOperandRef<'_> {
        match self {
            QCache::Dense(t) => QOperandRef::Dense(t),
            QCache::Packed(t) => QOperandRef::Packed(t),
        }
    }

    /// Materializes the operand as a dense tensor — bit-for-bit what the
    /// fake-quantization path would have produced. Probes and statistics
    /// read the cache through this.
    pub fn dequantize(&self) -> Tensor {
        match self {
            QCache::Dense(t) => t.clone(),
            QCache::Packed(t) => t.dequantize(),
        }
    }

    /// Resident bytes of this cached operand (codes + scales + decode table
    /// for packed storage, raw buffer for dense).
    pub fn resident_bytes(&self) -> usize {
        match self {
            QCache::Dense(t) => std::mem::size_of::<Tensor>() + t.len() * 4,
            QCache::Packed(t) => t.resident_bytes(),
        }
    }
}

/// Activations saved by [`Linear::forward`] for the backward pass.
///
/// `qx`/`qw` are the *quantized* operands — exactly what the backward GEMMs
/// consume, and (during BF16 statistics collection) numerically equal to the
/// BF16 activations/weights. Subbyte operands stay bit-packed here, which
/// is where the packed representation pays off: the dominant activation
/// memory of the backward pass shrinks by ~8× under FP4.
#[derive(Clone, Debug)]
pub struct LinearCache {
    /// Quantized input activations, `tokens × in_features`.
    pub qx: QCache,
    /// Quantized weight, `out_features × in_features`.
    pub qw: QCache,
}

impl LinearCache {
    /// Total resident bytes of the saved operands.
    pub fn resident_bytes(&self) -> usize {
        self.qx.resident_bytes() + self.qw.resident_bytes()
    }
}

impl Linear {
    /// Creates a linear layer with scaled Gaussian init
    /// (`std = gain / sqrt(in_features)`).
    pub fn new(
        name: impl Into<String>,
        out_features: usize,
        in_features: usize,
        gain: f32,
        quant_group: usize,
        rng: &mut Rng,
    ) -> Self {
        let std = gain / (in_features as f32).sqrt();
        Linear {
            weight: Param::randn(name, out_features, in_features, std, rng),
            precision: LinearPrecision::default(),
            quant_group,
            exact: false,
        }
    }

    /// Enables or disables exact (f32, quantization-free) math.
    pub fn set_exact_mode(&mut self, exact: bool) {
        self.exact = exact;
    }

    /// Whether exact mode is on.
    pub fn exact_mode(&self) -> bool {
        self.exact
    }

    /// `(out_features, in_features)`.
    pub fn dims(&self) -> (usize, usize) {
        self.weight.value().shape()
    }

    /// Current precision assignment.
    pub fn precision(&self) -> LinearPrecision {
        self.precision
    }

    /// Reassigns the layer's precision (SNIP Step 6 applies new schemes here).
    pub fn set_precision(&mut self, p: LinearPrecision) {
        self.precision = p;
    }

    /// The weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter (optimizer use).
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    fn quantizer(&self, role: TensorRole) -> Quantizer {
        let p = match role {
            TensorRole::Input => self.precision.input,
            TensorRole::Weight => self.precision.weight,
            TensorRole::OutputGrad => self.precision.grad,
        };
        p.quantizer_with_group(role, self.quant_group)
    }

    /// Quantizes one GEMM operand, bit-packed when the precision allows.
    /// The packed and fake-quantized forms are numerically identical and
    /// consume identical stochastic-rounding draws, so which storage is
    /// chosen never changes the training trajectory.
    fn quantize_cached(&self, role: TensorRole, t: &Tensor, rng: &mut Rng) -> QCache {
        let q = self.quantizer(role);
        match q.quantize_packed(t, rng) {
            Some(packed) => QCache::Packed(packed),
            None => QCache::Dense(q.fake_quantize(t, rng)),
        }
    }

    /// Forward pass: quantizes `x` and `W` (bit-packed for subbyte
    /// precisions), runs the quantized GEMM, rounds the output to BF16.
    /// Returns the output and the cache for backward.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_features`.
    pub fn forward(&self, x: &Tensor, rng: &mut Rng) -> (Tensor, LinearCache) {
        if self.exact {
            let qx = QCache::Dense(x.clone());
            let qw = QCache::Dense(self.weight.value().clone());
            let y = qgemm_nt(qx.operand(), qw.operand());
            return (y, LinearCache { qx, qw });
        }
        let qx = self.quantize_cached(TensorRole::Input, x, rng);
        let qw = self.quantize_cached(TensorRole::Weight, self.weight.value(), rng);
        // The `_bf16` kernel folds the BF16 rounding into the tile store —
        // bit-identical to rounding the plain qgemm output in a second pass.
        let y = qgemm_nt_bf16(qx.operand(), qw.operand());
        (y, LinearCache { qx, qw })
    }

    /// Backward pass: quantizes `dy` once, computes `dX` (returned) and `dW`
    /// (accumulated into the weight's FP32 gradient).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with the cached forward.
    pub fn backward(&mut self, dy: &Tensor, cache: &LinearCache, rng: &mut Rng) -> Tensor {
        self.backward_recorded(dy, cache, rng).0
    }

    /// Backward pass that also returns the (BF16-rounded) `dW` tensor for
    /// recording; gradient accumulation still happens.
    pub fn backward_recorded(
        &mut self,
        dy: &Tensor,
        cache: &LinearCache,
        rng: &mut Rng,
    ) -> (Tensor, Tensor) {
        if self.exact {
            let dx = qgemm(QOperandRef::from(dy), cache.qw.operand());
            let dw = qgemm_tn(QOperandRef::from(dy), cache.qx.operand());
            self.weight.accumulate_grad(&dw);
            return (dx, dw);
        }
        let qdy = self.quantize_cached(TensorRole::OutputGrad, dy, rng);
        let dx = qgemm_bf16(qdy.operand(), cache.qw.operand());
        let dw = qgemm_tn_bf16(qdy.operand(), cache.qx.operand());
        self.weight.accumulate_grad(&dw);
        (dx, dw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snip_quant::Precision;

    fn finite_difference_check(precision: LinearPrecision) {
        // With BF16 ("effectively exact" at these magnitudes) the manual
        // backward must match finite differences of the scalar loss
        // L = sum(Y ⊙ R) for a fixed random R.
        let mut rng = Rng::seed_from(21);
        let mut lin = Linear::new("w", 5, 4, 1.0, 4, &mut rng);
        lin.set_precision(precision);
        let x = Tensor::randn(3, 4, 0.5, &mut rng);
        let r = Tensor::randn(3, 5, 0.5, &mut rng);

        let (y, cache) = lin.forward(&x, &mut rng);
        assert_eq!(y.shape(), (3, 5));
        let dx = lin.backward(&r, &cache, &mut rng);

        // dL/dx[i,j] via central differences
        let loss = |lin: &Linear, x: &Tensor, rng: &mut Rng| -> f64 {
            let (y, _) = lin.forward(x, rng);
            y.mul(&r).sum()
        };
        for &(i, j) in &[(0usize, 0usize), (1, 2), (2, 3)] {
            let h = 5e-2f32;
            let mut xp = x.clone();
            xp[(i, j)] += h;
            let mut xm = x.clone();
            xm[(i, j)] -= h;
            let fd = (loss(&lin, &xp, &mut rng) - loss(&lin, &xm, &mut rng)) / (2.0 * h as f64);
            let an = dx[(i, j)] as f64;
            assert!(
                (fd - an).abs() < 1e-1 * (1.0 + an.abs()),
                "dx[{i},{j}]: fd={fd}, analytic={an}"
            );
        }
    }

    #[test]
    fn backward_matches_finite_differences_bf16() {
        finite_difference_check(LinearPrecision::uniform(Precision::Bf16));
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let mut rng = Rng::seed_from(22);
        let mut lin = Linear::new("w", 4, 3, 1.0, 4, &mut rng);
        let x = Tensor::randn(6, 3, 0.5, &mut rng);
        let r = Tensor::randn(6, 4, 0.5, &mut rng);

        lin.weight_mut().zero_grad();
        let (_, cache) = lin.forward(&x, &mut rng);
        let _ = lin.backward(&r, &cache, &mut rng);
        let dw = lin.weight().grad().clone();

        for &(i, j) in &[(0usize, 0usize), (2, 1), (3, 2)] {
            let h = 5e-2f32;
            let mut lp = lin.clone();
            lp.weight_mut().value_mut()[(i, j)] += h;
            let mut lm = lin.clone();
            lm.weight_mut().value_mut()[(i, j)] -= h;
            let (yp, _) = lp.forward(&x, &mut rng);
            let (ym, _) = lm.forward(&x, &mut rng);
            let fd = (yp.mul(&r).sum() - ym.mul(&r).sum()) / (2.0 * h as f64);
            let an = dw[(i, j)] as f64;
            assert!(
                (fd - an).abs() < 1e-1 * (1.0 + an.abs()),
                "dw[{i},{j}]: fd={fd}, analytic={an}"
            );
        }
    }

    #[test]
    fn quantized_forward_approximates_exact_forward() {
        let mut rng = Rng::seed_from(23);
        let mut lin = Linear::new("w", 16, 16, 1.0, 8, &mut rng);
        let x = Tensor::randn(8, 16, 1.0, &mut rng);
        let (y_ref, _) = lin.forward(&x, &mut rng); // bf16 default

        lin.set_precision(LinearPrecision::uniform(Precision::Fp8));
        let (y8, _) = lin.forward(&x, &mut rng);
        lin.set_precision(LinearPrecision::uniform(Precision::Fp4));
        let (y4, _) = lin.forward(&x, &mut rng);

        let e8 = y8.distance(&y_ref) / y_ref.frobenius_norm();
        let e4 = y4.distance(&y_ref) / y_ref.frobenius_norm();
        assert!(e8 < 0.05, "fp8 relative error {e8}");
        assert!(e4 < 0.5, "fp4 relative error {e4}");
        assert!(e4 > e8, "fp4 ({e4}) should be noisier than fp8 ({e8})");
    }

    #[test]
    fn gradients_accumulate_across_calls() {
        let mut rng = Rng::seed_from(24);
        let mut lin = Linear::new("w", 3, 3, 1.0, 4, &mut rng);
        let x = Tensor::randn(2, 3, 1.0, &mut rng);
        let dy = Tensor::randn(2, 3, 1.0, &mut rng);
        let (_, cache) = lin.forward(&x, &mut rng);
        let _ = lin.backward(&dy, &cache, &mut rng);
        let g1 = lin.weight().grad().frobenius_norm();
        let _ = lin.backward(&dy, &cache, &mut rng);
        let g2 = lin.weight().grad().frobenius_norm();
        assert!((g2 - 2.0 * g1).abs() < 1e-6 * g1.max(1.0));
    }

    #[test]
    fn packed_pipeline_bit_matches_the_fake_quant_reference() {
        // The packed path must reproduce the seed's fake-quantization
        // implementation exactly — same outputs, same gradients, same RNG
        // stream — so training trajectories are unchanged.
        use snip_quant::format::bf16_round_slice;
        use snip_tensor::matmul::{matmul, matmul_nt, matmul_tn};
        for precision in [
            LinearPrecision::uniform(Precision::Fp4),
            LinearPrecision::uniform(Precision::Fp8),
            LinearPrecision {
                input: Precision::Fp4,
                weight: Precision::Fp8,
                grad: Precision::Fp4,
            },
            LinearPrecision::uniform(Precision::Bf16),
        ] {
            let mut rng = Rng::seed_from(31);
            let mut lin = Linear::new("w", 12, 16, 1.0, 8, &mut rng);
            lin.set_precision(precision);
            let x = Tensor::randn(6, 16, 1.0, &mut rng);
            let dy = Tensor::randn(6, 12, 1.0, &mut rng);

            let mut rng_new = Rng::seed_from(77);
            let (y, cache) = lin.forward(&x, &mut rng_new);
            lin.weight_mut().zero_grad();
            let (dx, dw) = lin.backward_recorded(&dy, &cache, &mut rng_new);

            // Reference: the fake-quantization data flow of the seed.
            let mut rng_ref = Rng::seed_from(77);
            let qx = lin
                .quantizer(TensorRole::Input)
                .fake_quantize(&x, &mut rng_ref);
            let qw = lin
                .quantizer(TensorRole::Weight)
                .fake_quantize(lin.weight().value(), &mut rng_ref);
            let mut y_ref = matmul_nt(&qx, &qw);
            bf16_round_slice(y_ref.as_mut_slice());
            let qdy = lin
                .quantizer(TensorRole::OutputGrad)
                .fake_quantize(&dy, &mut rng_ref);
            let mut dx_ref = matmul(&qdy, &qw);
            bf16_round_slice(dx_ref.as_mut_slice());
            let mut dw_ref = matmul_tn(&qdy, &qx);
            bf16_round_slice(dw_ref.as_mut_slice());

            for (got, want) in [(&y, &y_ref), (&dx, &dx_ref), (&dw, &dw_ref)] {
                assert_eq!(got.shape(), want.shape());
                for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{precision}: {a} vs {b}");
                }
            }
            // Same stochastic draws consumed.
            assert_eq!(rng_new.next_u64(), rng_ref.next_u64(), "{precision}");
            // Cache dequantization reproduces the fake-quant operands.
            for (got, want) in [(cache.qx.dequantize(), qx), (cache.qw.dequantize(), qw)] {
                for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{precision} cache");
                }
            }
        }
    }

    #[test]
    fn fp4_backward_cache_is_packed_and_at_least_7x_smaller() {
        let mut rng = Rng::seed_from(41);
        let mut lin = Linear::new("w", 128, 256, 1.0, 128, &mut rng);
        lin.set_precision(LinearPrecision::uniform(Precision::Fp4));
        let x = Tensor::randn(64, 256, 1.0, &mut rng);
        let (_, cache) = lin.forward(&x, &mut rng);

        assert!(cache.qx.is_packed(), "FP4 activations must be packed");
        assert!(cache.qw.is_packed(), "FP4 weights must be packed");

        // ≤ 0.5 B/element + scale overhead (4 B per 1×128 tile) + small
        // constant metadata (decode table + container).
        let elems = 64 * 256;
        let budget = 0.5 * elems as f64 + 4.0 * (64 * 2) as f64 + 256.0;
        let got = cache.qx.resident_bytes() as f64;
        assert!(got <= budget, "qx resident {got} B > budget {budget} B");

        // ≥ ~7× smaller than the seed's dense f32 cache.
        let dense = (elems * 4) as f64;
        assert!(
            dense / got >= 7.0,
            "packed cache only {}x smaller than f32",
            dense / got
        );

        // BF16 falls back to dense storage.
        lin.set_precision(LinearPrecision::uniform(Precision::Bf16));
        let (_, cache16) = lin.forward(&x, &mut rng);
        assert!(!cache16.qx.is_packed());
    }

    #[test]
    fn recorded_backward_returns_dw() {
        let mut rng = Rng::seed_from(25);
        let mut lin = Linear::new("w", 3, 4, 1.0, 4, &mut rng);
        let x = Tensor::randn(2, 4, 1.0, &mut rng);
        let dy = Tensor::randn(2, 3, 1.0, &mut rng);
        lin.weight_mut().zero_grad();
        let (_, cache) = lin.forward(&x, &mut rng);
        let (_, dw) = lin.backward_recorded(&dy, &cache, &mut rng);
        assert_eq!(&dw, lin.weight().grad());
    }
}
