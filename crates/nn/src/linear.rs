//! Mixed-precision linear layer (paper Fig. 5).
//!
//! The forward GEMM consumes quantized activations and weights; the two
//! backward GEMMs consume the quantized output gradient together with the
//! quantized weight (for `dX`) or quantized input (for `dW`). GEMM outputs
//! are rounded to BF16, and the FP32 master weight is only touched by the
//! optimizer:
//!
//! ```text
//!  forward:  Y  = Q_x(X) · Q_w(W)ᵀ           (output BF16)
//!  backward: dX = Q_g(dY) · Q_w(W)           (output BF16)
//!            dW = Q_g(dY)ᵀ · Q_x(X)          (output BF16, accumulated FP32)
//! ```

use crate::param::Param;
use serde::{Deserialize, Serialize};
use snip_quant::{format::bf16_round_slice, LinearPrecision, Quantizer, TensorRole};
use snip_tensor::{
    matmul::{matmul, matmul_nt, matmul_tn},
    rng::Rng,
    Tensor,
};

/// A linear layer `y = x · Wᵀ` with per-operand quantization.
///
/// The weight is stored `out_features × in_features`; no bias (Llama-style).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linear {
    weight: Param,
    precision: LinearPrecision,
    quant_group: usize,
    /// When `true`, bypass all quantization and BF16 rounding (exact f32
    /// math). Used by gradient-check tests and as an FP32 reference mode.
    #[serde(default)]
    exact: bool,
}

/// Activations saved by [`Linear::forward`] for the backward pass.
///
/// `qx`/`qw` are the *quantized* operands — exactly what the backward GEMMs
/// consume, and (during BF16 statistics collection) numerically equal to the
/// BF16 activations/weights.
#[derive(Clone, Debug)]
pub struct LinearCache {
    /// Quantized input activations, `tokens × in_features`.
    pub qx: Tensor,
    /// Quantized weight, `out_features × in_features`.
    pub qw: Tensor,
}

impl Linear {
    /// Creates a linear layer with scaled Gaussian init
    /// (`std = gain / sqrt(in_features)`).
    pub fn new(
        name: impl Into<String>,
        out_features: usize,
        in_features: usize,
        gain: f32,
        quant_group: usize,
        rng: &mut Rng,
    ) -> Self {
        let std = gain / (in_features as f32).sqrt();
        Linear {
            weight: Param::randn(name, out_features, in_features, std, rng),
            precision: LinearPrecision::default(),
            quant_group,
            exact: false,
        }
    }

    /// Enables or disables exact (f32, quantization-free) math.
    pub fn set_exact_mode(&mut self, exact: bool) {
        self.exact = exact;
    }

    /// Whether exact mode is on.
    pub fn exact_mode(&self) -> bool {
        self.exact
    }

    /// `(out_features, in_features)`.
    pub fn dims(&self) -> (usize, usize) {
        self.weight.value().shape()
    }

    /// Current precision assignment.
    pub fn precision(&self) -> LinearPrecision {
        self.precision
    }

    /// Reassigns the layer's precision (SNIP Step 6 applies new schemes here).
    pub fn set_precision(&mut self, p: LinearPrecision) {
        self.precision = p;
    }

    /// The weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter (optimizer use).
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    fn quantizer(&self, role: TensorRole) -> Quantizer {
        let p = match role {
            TensorRole::Input => self.precision.input,
            TensorRole::Weight => self.precision.weight,
            TensorRole::OutputGrad => self.precision.grad,
        };
        p.quantizer_with_group(role, self.quant_group)
    }

    /// Forward pass: quantizes `x` and `W`, runs the GEMM, rounds the output
    /// to BF16. Returns the output and the cache for backward.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_features`.
    pub fn forward(&self, x: &Tensor, rng: &mut Rng) -> (Tensor, LinearCache) {
        if self.exact {
            let qx = x.clone();
            let qw = self.weight.value().clone();
            let y = matmul_nt(&qx, &qw);
            return (y, LinearCache { qx, qw });
        }
        let qx = self.quantizer(TensorRole::Input).fake_quantize(x, rng);
        let qw = self
            .quantizer(TensorRole::Weight)
            .fake_quantize(self.weight.value(), rng);
        let mut y = matmul_nt(&qx, &qw);
        bf16_round_slice(y.as_mut_slice());
        (y, LinearCache { qx, qw })
    }

    /// Backward pass: quantizes `dy` once, computes `dX` (returned) and `dW`
    /// (accumulated into the weight's FP32 gradient).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with the cached forward.
    pub fn backward(&mut self, dy: &Tensor, cache: &LinearCache, rng: &mut Rng) -> Tensor {
        self.backward_recorded(dy, cache, rng).0
    }

    /// Backward pass that also returns the (BF16-rounded) `dW` tensor for
    /// recording; gradient accumulation still happens.
    pub fn backward_recorded(
        &mut self,
        dy: &Tensor,
        cache: &LinearCache,
        rng: &mut Rng,
    ) -> (Tensor, Tensor) {
        if self.exact {
            let dx = matmul(dy, &cache.qw);
            let dw = matmul_tn(dy, &cache.qx);
            self.weight.accumulate_grad(&dw);
            return (dx, dw);
        }
        let qdy = self.quantizer(TensorRole::OutputGrad).fake_quantize(dy, rng);
        let mut dx = matmul(&qdy, &cache.qw);
        bf16_round_slice(dx.as_mut_slice());
        let mut dw = matmul_tn(&qdy, &cache.qx);
        bf16_round_slice(dw.as_mut_slice());
        self.weight.accumulate_grad(&dw);
        (dx, dw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snip_quant::Precision;

    fn finite_difference_check(precision: LinearPrecision) {
        // With BF16 ("effectively exact" at these magnitudes) the manual
        // backward must match finite differences of the scalar loss
        // L = sum(Y ⊙ R) for a fixed random R.
        let mut rng = Rng::seed_from(21);
        let mut lin = Linear::new("w", 5, 4, 1.0, 4, &mut rng);
        lin.set_precision(precision);
        let x = Tensor::randn(3, 4, 0.5, &mut rng);
        let r = Tensor::randn(3, 5, 0.5, &mut rng);

        let (y, cache) = lin.forward(&x, &mut rng);
        assert_eq!(y.shape(), (3, 5));
        let dx = lin.backward(&r, &cache, &mut rng);

        // dL/dx[i,j] via central differences
        let loss = |lin: &Linear, x: &Tensor, rng: &mut Rng| -> f64 {
            let (y, _) = lin.forward(x, rng);
            y.mul(&r).sum()
        };
        for &(i, j) in &[(0usize, 0usize), (1, 2), (2, 3)] {
            let h = 5e-2f32;
            let mut xp = x.clone();
            xp[(i, j)] += h;
            let mut xm = x.clone();
            xm[(i, j)] -= h;
            let fd = (loss(&lin, &xp, &mut rng) - loss(&lin, &xm, &mut rng)) / (2.0 * h as f64);
            let an = dx[(i, j)] as f64;
            assert!(
                (fd - an).abs() < 1e-1 * (1.0 + an.abs()),
                "dx[{i},{j}]: fd={fd}, analytic={an}"
            );
        }
    }

    #[test]
    fn backward_matches_finite_differences_bf16() {
        finite_difference_check(LinearPrecision::uniform(Precision::Bf16));
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let mut rng = Rng::seed_from(22);
        let mut lin = Linear::new("w", 4, 3, 1.0, 4, &mut rng);
        let x = Tensor::randn(6, 3, 0.5, &mut rng);
        let r = Tensor::randn(6, 4, 0.5, &mut rng);

        lin.weight_mut().zero_grad();
        let (_, cache) = lin.forward(&x, &mut rng);
        let _ = lin.backward(&r, &cache, &mut rng);
        let dw = lin.weight().grad().clone();

        for &(i, j) in &[(0usize, 0usize), (2, 1), (3, 2)] {
            let h = 5e-2f32;
            let mut lp = lin.clone();
            lp.weight_mut().value_mut()[(i, j)] += h;
            let mut lm = lin.clone();
            lm.weight_mut().value_mut()[(i, j)] -= h;
            let (yp, _) = lp.forward(&x, &mut rng);
            let (ym, _) = lm.forward(&x, &mut rng);
            let fd = (yp.mul(&r).sum() - ym.mul(&r).sum()) / (2.0 * h as f64);
            let an = dw[(i, j)] as f64;
            assert!(
                (fd - an).abs() < 1e-1 * (1.0 + an.abs()),
                "dw[{i},{j}]: fd={fd}, analytic={an}"
            );
        }
    }

    #[test]
    fn quantized_forward_approximates_exact_forward() {
        let mut rng = Rng::seed_from(23);
        let mut lin = Linear::new("w", 16, 16, 1.0, 8, &mut rng);
        let x = Tensor::randn(8, 16, 1.0, &mut rng);
        let (y_ref, _) = lin.forward(&x, &mut rng); // bf16 default

        lin.set_precision(LinearPrecision::uniform(Precision::Fp8));
        let (y8, _) = lin.forward(&x, &mut rng);
        lin.set_precision(LinearPrecision::uniform(Precision::Fp4));
        let (y4, _) = lin.forward(&x, &mut rng);

        let e8 = y8.distance(&y_ref) / y_ref.frobenius_norm();
        let e4 = y4.distance(&y_ref) / y_ref.frobenius_norm();
        assert!(e8 < 0.05, "fp8 relative error {e8}");
        assert!(e4 < 0.5, "fp4 relative error {e4}");
        assert!(e4 > e8, "fp4 ({e4}) should be noisier than fp8 ({e8})");
    }

    #[test]
    fn gradients_accumulate_across_calls() {
        let mut rng = Rng::seed_from(24);
        let mut lin = Linear::new("w", 3, 3, 1.0, 4, &mut rng);
        let x = Tensor::randn(2, 3, 1.0, &mut rng);
        let dy = Tensor::randn(2, 3, 1.0, &mut rng);
        let (_, cache) = lin.forward(&x, &mut rng);
        let _ = lin.backward(&dy, &cache, &mut rng);
        let g1 = lin.weight().grad().frobenius_norm();
        let _ = lin.backward(&dy, &cache, &mut rng);
        let g2 = lin.weight().grad().frobenius_norm();
        assert!((g2 - 2.0 * g1).abs() < 1e-6 * g1.max(1.0));
    }

    #[test]
    fn recorded_backward_returns_dw() {
        let mut rng = Rng::seed_from(25);
        let mut lin = Linear::new("w", 3, 4, 1.0, 4, &mut rng);
        let x = Tensor::randn(2, 4, 1.0, &mut rng);
        let dy = Tensor::randn(2, 3, 1.0, &mut rng);
        lin.weight_mut().zero_grad();
        let (_, cache) = lin.forward(&x, &mut rng);
        let (_, dw) = lin.backward_recorded(&dy, &cache, &mut rng);
        assert_eq!(&dw, lin.weight().grad());
    }
}
