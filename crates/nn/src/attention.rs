//! Multi-head causal self-attention (computed in high precision — the paper
//! quantizes only the Q/K/V/O *projections*, not the attention math, §2.2).

use crate::rope::Rope;
use serde::{Deserialize, Serialize};
use snip_tensor::{
    matmul::{matmul, matmul_nt, matmul_tn},
    ops::softmax_rows_inplace,
    Tensor,
};

/// Scaled-dot-product multi-head attention with causal masking and RoPE.
///
/// Operates on already-projected Q/K/V activations of shape
/// `(batch·seq) × hidden`; heads are interpreted as contiguous column blocks
/// of width `head_dim`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Attention {
    n_heads: usize,
    head_dim: usize,
    rope: Rope,
}

/// Saved forward state for the backward pass.
#[derive(Clone, Debug)]
pub struct AttentionCache {
    /// Post-RoPE queries, `(batch·seq) × hidden`.
    q_rot: Tensor,
    /// Post-RoPE keys.
    k_rot: Tensor,
    /// Values.
    v: Tensor,
    /// Softmax probabilities per `(batch, head)`, each `seq × seq`.
    probs: Vec<Tensor>,
    batch: usize,
    seq: usize,
}

impl Attention {
    /// Creates an attention module.
    pub fn new(n_heads: usize, head_dim: usize, max_seq: usize, rope_theta: f32) -> Self {
        Attention {
            n_heads,
            head_dim,
            rope: Rope::new(head_dim, max_seq, rope_theta),
        }
    }

    /// Hidden width (`n_heads · head_dim`).
    pub fn hidden(&self) -> usize {
        self.n_heads * self.head_dim
    }

    /// Copies head `h` of sequence `b` out of a `(batch·seq) × hidden` tensor.
    fn head(&self, x: &Tensor, b: usize, h: usize, seq: usize) -> Tensor {
        let mut out = Tensor::zeros(seq, self.head_dim);
        for t in 0..seq {
            let src = &x.row(b * seq + t)[h * self.head_dim..(h + 1) * self.head_dim];
            out.row_mut(t).copy_from_slice(src);
        }
        out
    }

    /// Writes a `seq × head_dim` slice back into place.
    fn set_head(&self, x: &mut Tensor, b: usize, h: usize, seq: usize, slice: &Tensor) {
        for t in 0..seq {
            let dst = &mut x.row_mut(b * seq + t)[h * self.head_dim..(h + 1) * self.head_dim];
            dst.copy_from_slice(slice.row(t));
        }
    }

    /// Adds a `seq × head_dim` slice into place (for gradient accumulation).
    fn add_head(&self, x: &mut Tensor, b: usize, h: usize, seq: usize, slice: &Tensor) {
        for t in 0..seq {
            let dst = &mut x.row_mut(b * seq + t)[h * self.head_dim..(h + 1) * self.head_dim];
            for (d, s) in dst.iter_mut().zip(slice.row(t)) {
                *d += s;
            }
        }
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if tensor shapes are inconsistent with `batch·seq` rows of
    /// `hidden` columns.
    pub fn forward(
        &self,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        batch: usize,
        seq: usize,
    ) -> (Tensor, AttentionCache) {
        let hidden = self.hidden();
        assert_eq!(q.shape(), (batch * seq, hidden), "bad q shape");
        assert_eq!(k.shape(), q.shape(), "bad k shape");
        assert_eq!(v.shape(), q.shape(), "bad v shape");
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        // Apply RoPE to q and k, head by head.
        let mut q_rot = q.clone();
        let mut k_rot = k.clone();
        let mut out = Tensor::zeros(batch * seq, hidden);
        let mut probs = Vec::with_capacity(batch * self.n_heads);
        for b in 0..batch {
            for h in 0..self.n_heads {
                let mut qh = self.head(q, b, h, seq);
                let mut kh = self.head(k, b, h, seq);
                self.rope.apply(&mut qh);
                self.rope.apply(&mut kh);
                self.set_head(&mut q_rot, b, h, seq, &qh);
                self.set_head(&mut k_rot, b, h, seq, &kh);

                let vh = self.head(v, b, h, seq);
                let mut scores = matmul_nt(&qh, &kh);
                scores.scale(scale);
                // Causal mask: position i attends to j ≤ i.
                for i in 0..seq {
                    let row = scores.row_mut(i);
                    for v in &mut row[i + 1..] {
                        *v = f32::NEG_INFINITY;
                    }
                }
                softmax_rows_inplace(&mut scores);
                let attended = matmul(&scores, &vh);
                self.set_head(&mut out, b, h, seq, &attended);
                probs.push(scores);
            }
        }
        (
            out,
            AttentionCache {
                q_rot,
                k_rot,
                v: v.clone(),
                probs,
                batch,
                seq,
            },
        )
    }

    /// Backward pass: gradient w.r.t. the *pre-RoPE* q, k and v.
    pub fn backward(&self, dout: &Tensor, cache: &AttentionCache) -> (Tensor, Tensor, Tensor) {
        let (batch, seq) = (cache.batch, cache.seq);
        let hidden = self.hidden();
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut dq = Tensor::zeros(batch * seq, hidden);
        let mut dk = Tensor::zeros(batch * seq, hidden);
        let mut dv = Tensor::zeros(batch * seq, hidden);

        for b in 0..batch {
            for h in 0..self.n_heads {
                let p = &cache.probs[b * self.n_heads + h];
                let da = self.head(dout, b, h, seq);
                let qh = self.head(&cache.q_rot, b, h, seq);
                let kh = self.head(&cache.k_rot, b, h, seq);
                let vh = self.head(&cache.v, b, h, seq);

                // dV = Pᵀ · dA
                let dvh = matmul_tn(p, &da);
                // dP = dA · Vᵀ
                let dp = matmul_nt(&da, &vh);
                // Softmax backward per row: dS = P ⊙ (dP − rowsum(dP ⊙ P)).
                let mut ds = Tensor::zeros(seq, seq);
                for i in 0..seq {
                    let pi = p.row(i);
                    let dpi = dp.row(i);
                    let dot: f32 = pi.iter().zip(dpi).map(|(&a, &b)| a * b).sum();
                    let dsi = ds.row_mut(i);
                    for j in 0..seq {
                        dsi[j] = pi[j] * (dpi[j] - dot);
                    }
                }
                ds.scale(scale);
                // dQ_rot = dS · K ; dK_rot = dSᵀ · Q
                let mut dqh = matmul(&ds, &kh);
                let mut dkh = matmul_tn(&ds, &qh);
                // Undo RoPE (adjoint).
                self.rope.apply_transposed(&mut dqh);
                self.rope.apply_transposed(&mut dkh);

                self.add_head(&mut dq, b, h, seq, &dqh);
                self.add_head(&mut dk, b, h, seq, &dkh);
                self.add_head(&mut dv, b, h, seq, &dvh);
            }
        }
        (dq, dk, dv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snip_tensor::rng::Rng;

    fn setup(batch: usize, seq: usize) -> (Attention, Tensor, Tensor, Tensor, Tensor) {
        let mut rng = Rng::seed_from(51);
        let attn = Attention::new(2, 4, seq, 10_000.0);
        let h = attn.hidden();
        let q = Tensor::randn(batch * seq, h, 0.7, &mut rng);
        let k = Tensor::randn(batch * seq, h, 0.7, &mut rng);
        let v = Tensor::randn(batch * seq, h, 0.7, &mut rng);
        let r = Tensor::randn(batch * seq, h, 0.7, &mut rng);
        (attn, q, k, v, r)
    }

    #[test]
    fn causality_first_token_attends_only_itself() {
        let (attn, q, k, v, _) = setup(1, 5);
        let (out, cache) = attn.forward(&q, &k, &v, 1, 5);
        assert_eq!(out.shape(), (5, 8));
        // Row 0 of each probability matrix must be one-hot on position 0.
        for p in &cache.probs {
            assert!((p[(0, 0)] - 1.0).abs() < 1e-6);
            for j in 1..5 {
                assert_eq!(p[(0, j)], 0.0);
            }
            // And later rows must not attend to the future.
            for i in 0..5 {
                for j in (i + 1)..5 {
                    assert_eq!(p[(i, j)], 0.0, "P[{i},{j}]");
                }
            }
        }
    }

    #[test]
    fn future_tokens_do_not_affect_past_outputs() {
        let (attn, q, k, mut v, _) = setup(1, 6);
        let (out1, _) = attn.forward(&q, &k, &v, 1, 6);
        // Perturb the last position's value strongly.
        for c in 0..8 {
            v[(5, c)] += 100.0;
        }
        let (out2, _) = attn.forward(&q, &k, &v, 1, 6);
        for t in 0..5 {
            for c in 0..8 {
                assert!(
                    (out1[(t, c)] - out2[(t, c)]).abs() < 1e-5,
                    "output at t={t} changed"
                );
            }
        }
    }

    #[test]
    fn batches_are_independent() {
        let (attn, q, k, v, _) = setup(2, 4);
        let (out, _) = attn.forward(&q, &k, &v, 2, 4);
        // Re-run with only the first sequence.
        let h = attn.hidden();
        let take = |t: &Tensor| {
            let mut s = Tensor::zeros(4, h);
            for r in 0..4 {
                s.row_mut(r).copy_from_slice(t.row(r));
            }
            s
        };
        let (out_single, _) = attn.forward(&take(&q), &take(&k), &take(&v), 1, 4);
        for r in 0..4 {
            for c in 0..h {
                assert!((out[(r, c)] - out_single[(r, c)]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let (attn, q, k, v, r) = setup(1, 4);
        let (_, cache) = attn.forward(&q, &k, &v, 1, 4);
        let (dq, dk, dv) = attn.backward(&r, &cache);

        let loss = |q: &Tensor, k: &Tensor, v: &Tensor| -> f64 {
            attn.forward(q, k, v, 1, 4).0.mul(&r).sum()
        };
        let h = 1e-3f32;
        // dQ
        for &(i, j) in &[(0usize, 0usize), (2, 5), (3, 7)] {
            let mut p = q.clone();
            p[(i, j)] += h;
            let mut m = q.clone();
            m[(i, j)] -= h;
            let fd = (loss(&p, &k, &v) - loss(&m, &k, &v)) / (2.0 * h as f64);
            let an = dq[(i, j)] as f64;
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + an.abs()),
                "dq fd={fd} an={an}"
            );
        }
        // dK
        for &(i, j) in &[(1usize, 1usize), (3, 4)] {
            let mut p = k.clone();
            p[(i, j)] += h;
            let mut m = k.clone();
            m[(i, j)] -= h;
            let fd = (loss(&q, &p, &v) - loss(&q, &m, &v)) / (2.0 * h as f64);
            let an = dk[(i, j)] as f64;
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + an.abs()),
                "dk fd={fd} an={an}"
            );
        }
        // dV
        for &(i, j) in &[(0usize, 3usize), (2, 6)] {
            let mut p = v.clone();
            p[(i, j)] += h;
            let mut m = v.clone();
            m[(i, j)] -= h;
            let fd = (loss(&q, &k, &p) - loss(&q, &k, &m)) / (2.0 * h as f64);
            let an = dv[(i, j)] as f64;
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + an.abs()),
                "dv fd={fd} an={an}"
            );
        }
    }
}
