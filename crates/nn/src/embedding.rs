//! Token embedding table.

use crate::param::Param;
use serde::{Deserialize, Serialize};
use snip_tensor::{rng::Rng, Tensor};

/// A `vocab × hidden` embedding lookup (kept in high precision).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Embedding {
    table: Param,
}

impl Embedding {
    /// Creates a Gaussian-initialized embedding table.
    pub fn new(
        name: impl Into<String>,
        vocab: usize,
        hidden: usize,
        std: f32,
        rng: &mut Rng,
    ) -> Self {
        Embedding {
            table: Param::randn(name, vocab, hidden, std, rng),
        }
    }

    /// The table parameter.
    pub fn table(&self) -> &Param {
        &self.table
    }

    /// Mutable access to the table parameter.
    pub fn table_mut(&mut self) -> &mut Param {
        &mut self.table
    }

    /// Gathers rows for the given token ids.
    ///
    /// # Panics
    ///
    /// Panics if a token id is out of range.
    pub fn forward(&self, tokens: &[u32]) -> Tensor {
        let (vocab, hidden) = self.table.value().shape();
        let mut out = Tensor::zeros(tokens.len(), hidden);
        for (r, &tok) in tokens.iter().enumerate() {
            assert!((tok as usize) < vocab, "token {tok} out of range {vocab}");
            out.row_mut(r)
                .copy_from_slice(self.table.value().row(tok as usize));
        }
        out
    }

    /// Scatter-adds `dout` into the table gradient.
    pub fn backward(&mut self, tokens: &[u32], dout: &Tensor) {
        let grad = self.table.grad_mut();
        for (r, &tok) in tokens.iter().enumerate() {
            let dst = grad.row_mut(tok as usize);
            for (d, s) in dst.iter_mut().zip(dout.row(r)) {
                *d += s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_matches_table_rows() {
        let mut rng = Rng::seed_from(61);
        let emb = Embedding::new("e", 10, 4, 1.0, &mut rng);
        let out = emb.forward(&[3, 7, 3]);
        assert_eq!(out.row(0), emb.table().value().row(3));
        assert_eq!(out.row(1), emb.table().value().row(7));
        assert_eq!(out.row(0), out.row(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_token_panics() {
        let mut rng = Rng::seed_from(62);
        let emb = Embedding::new("e", 4, 2, 1.0, &mut rng);
        let _ = emb.forward(&[4]);
    }

    #[test]
    fn backward_scatter_adds_duplicates() {
        let mut rng = Rng::seed_from(63);
        let mut emb = Embedding::new("e", 5, 3, 1.0, &mut rng);
        let dout = Tensor::from_vec(3, 3, vec![1.0; 9]);
        emb.backward(&[2, 2, 4], &dout);
        assert_eq!(emb.table().grad().row(2), &[2.0, 2.0, 2.0]);
        assert_eq!(emb.table().grad().row(4), &[1.0, 1.0, 1.0]);
        assert_eq!(emb.table().grad().row(0), &[0.0, 0.0, 0.0]);
    }
}
