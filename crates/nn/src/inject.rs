//! Gaussian noise-injection probes (SNIP Steps 2–3, paper Fig. 6 and §4.3.1).
//!
//! Estimating the second-order propagation norms `‖∇_{X_j} g_l‖` exactly is
//! prohibitive, so the paper applies Theorem 4.2: inject a small Gaussian
//! perturbation at the last layer — once in the backward pass (Step 2), once
//! in the forward pass (Step 3) — re-run the pass on the *same batch* without
//! updating weights, dump the per-layer weight gradients, and compare with
//! the no-noise baseline.

use serde::{Deserialize, Serialize};
use snip_tensor::{rng::Rng, Tensor};

/// Where the probe noise enters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InjectionSite {
    /// Added to the last transformer block's output activations during the
    /// forward pass (Step 3).
    ForwardTop,
    /// Added to the gradient flowing into the last transformer block during
    /// the backward pass (Step 2).
    BackwardTop,
}

/// A noise-injection request for one probe pass.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Injection {
    /// Injection point.
    pub site: InjectionSite,
    /// Target Frobenius norm of the injected noise (the `ε` of Theorem 4.2).
    pub epsilon: f64,
    /// Seed for the noise tensor, so probes are reproducible.
    pub seed: u64,
}

impl Injection {
    /// Samples the noise tensor for a target of the given shape: i.i.d.
    /// Gaussian entries with `σ = ε / √(numel)` so that `E‖δ‖_F = ε`
    /// (Theorem 4.1's `δ ∼ N(0, ε²/d · I_d)`).
    pub fn sample(&self, rows: usize, cols: usize) -> Tensor {
        let mut rng = Rng::seed_from(self.seed);
        let d = (rows * cols) as f64;
        let std = (self.epsilon / d.sqrt()) as f32;
        Tensor::randn(rows, cols, std, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_noise_has_target_norm() {
        let inj = Injection {
            site: InjectionSite::ForwardTop,
            epsilon: 0.5,
            seed: 7,
        };
        let noise = inj.sample(64, 64);
        let norm = noise.frobenius_norm();
        assert!((norm - 0.5).abs() < 0.05, "‖δ‖ = {norm}");
    }

    #[test]
    fn same_seed_same_noise() {
        let inj = Injection {
            site: InjectionSite::BackwardTop,
            epsilon: 1.0,
            seed: 3,
        };
        assert_eq!(inj.sample(8, 8), inj.sample(8, 8));
    }
}
