//! Invariants of the SNIP engine and divergence analysis.

use proptest::prelude::*;
use snip_core::divergence::{injected_noise, loss_divergence};
use snip_core::stats::{ErrorByPrecision, LayerStats};
use snip_core::{
    FlopModel, OptionSet, PolicyConfig, SnipConfig, SnipEngine, Trainer, TrainerConfig,
};
use snip_quant::{LinearPrecision, Precision};

fn synthetic_layer_stats(scale: f64) -> LayerStats {
    LayerStats {
        tokens: 32,
        out_features: 16,
        in_features: 16,
        x_norm: 10.0 * scale,
        w_norm: 5.0,
        y_norm: 8.0,
        dy_norm: 2.0,
        dx_norm: 3.0,
        dw_norm: 4.0,
        x_err: ErrorByPrecision {
            fp4: 1.0 * scale,
            fp8: 0.1 * scale,
            bf16: 0.001,
        },
        w_err: ErrorByPrecision {
            fp4: 0.5,
            fp8: 0.05,
            bf16: 0.0005,
        },
        dy_err: ErrorByPrecision {
            fp4: 0.2,
            fp8: 0.02,
            bf16: 0.0002,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Loss divergence scales linearly with the quantization error norms.
    #[test]
    fn loss_divergence_linear_in_error(scale in 0.1f64..10.0) {
        let base = loss_divergence(
            &synthetic_layer_stats(1.0),
            2.0,
            LinearPrecision::uniform(Precision::Fp4),
        );
        // Scaling only x_err (w term unchanged) must move the result in the
        // same direction, bounded by linearity.
        let scaled = loss_divergence(
            &synthetic_layer_stats(scale),
            2.0,
            LinearPrecision::uniform(Precision::Fp4),
        );
        if scale > 1.0 {
            prop_assert!(scaled >= base);
        } else {
            prop_assert!(scaled <= base + 1e-12);
        }
    }

    /// Injected noise magnitudes are monotone in precision fidelity.
    #[test]
    fn injected_noise_monotone(scale in 0.5f64..2.0) {
        let stats = synthetic_layer_stats(scale);
        let n4 = injected_noise(&stats, LinearPrecision::uniform(Precision::Fp4));
        let n8 = injected_noise(&stats, LinearPrecision::uniform(Precision::Fp8));
        prop_assert!(n4.direct > n8.direct);
        prop_assert!(n4.backward > n8.backward);
        prop_assert!(n4.forward > n8.forward);
    }

    /// Loss divergence is normalized by |L|: doubling the loss halves it.
    #[test]
    fn loss_divergence_inverse_in_loss(loss in 0.5f64..8.0) {
        let stats = synthetic_layer_stats(1.0);
        let opt = LinearPrecision::uniform(Precision::Fp4);
        let at_loss = loss_divergence(&stats, loss, opt);
        let at_double = loss_divergence(&stats, 2.0 * loss, opt);
        prop_assert!((at_loss / at_double - 2.0).abs() < 1e-9);
    }
}

#[test]
fn engine_scheme_deterministic_across_runs() {
    let run = || -> Vec<LinearPrecision> {
        let cfg = TrainerConfig::tiny();
        let mut t = Trainer::new(cfg.clone()).unwrap();
        let _ = t.train(6);
        let engine = SnipEngine::new(
            SnipConfig {
                policy: PolicyConfig {
                    target_fp4: 0.5,
                    ..Default::default()
                },
                ..Default::default()
            },
            cfg.model.clone(),
        );
        let batch = t.peek_batch();
        let mut rng = snip_tensor::rng::Rng::seed_from(1);
        let optimizer = t.optimizer.clone();
        engine
            .generate_scheme_sync(&mut t.model, &optimizer, &batch, &mut rng, "d")
            .unwrap()
            .assignments()
            .to_vec()
    };
    assert_eq!(run(), run(), "SNIP decisions must be reproducible");
}

#[test]
fn budget_sweep_is_nested_under_equal_flops() {
    // With the fp8/fp4 option pair, raising the budget should only *add*
    // FP4 layers when all layers carry equal FLOPs within a class — verify
    // the weaker property that FP4 count is monotone in the budget.
    let cfg = TrainerConfig::tiny();
    let mut t = Trainer::new(cfg.clone()).unwrap();
    let _ = t.train(6);
    let batch = t.peek_batch();
    let rng = snip_tensor::rng::Rng::seed_from(2);
    let optimizer = t.optimizer.clone();

    let mut prev_count = 0;
    for budget in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let engine = SnipEngine::new(
            SnipConfig {
                policy: PolicyConfig {
                    target_fp4: budget,
                    ..Default::default()
                },
                ..Default::default()
            },
            cfg.model.clone(),
        );
        let scheme = engine
            .generate_scheme_sync(&mut t.model, &optimizer, &batch, &mut rng.clone(), "b")
            .unwrap();
        let count = scheme.fp4_layer_count();
        assert!(
            count >= prev_count,
            "budget {budget}: count {count} < previous {prev_count}"
        );
        prev_count = count;
        // And the achieved efficiency indeed meets the budget.
        let flops = FlopModel::new(&cfg.model);
        assert!(scheme.fp4_fraction(&flops) + 1e-9 >= budget);
    }
}

#[test]
fn option_set_len_matches_ilp_dimension() {
    assert_eq!(OptionSet::fp8_fp4().len(), 2);
    assert_eq!(OptionSet::mixed().len(), 8);
}
