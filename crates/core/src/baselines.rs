//! Baseline quantization schemes (paper §6.1).
//!
//! * **Uniform precision**: BF16, FP8 or FP4 everywhere.
//! * **min-abs-err / min-rel-err**: the same ILP as SNIP but with quality
//!   defined by *local* quantization error (absolute or relative), ignoring
//!   training dynamics — the fine-grained error-minimization baselines.
//! * **E-layer-type**: empirical, keeps the sensitive MLP Gate/Up
//!   projections in FP8, FP4 elsewhere (Fig. 9 caption).
//! * **E-layer-id**: empirical, FP4 for the middle layers, FP8 for the first
//!   and last layers.
//! * **random**: random per-layer assignment meeting the budget.

use crate::options::{FlopModel, OptionSet};
use crate::scheme::Scheme;
use crate::stats::StepStats;
use snip_ilp::{solve, Choice, McKnapsack, SolveError, SolveOptions};
use snip_nn::{LayerId, LayerKind, ModelConfig};
use snip_quant::{LinearPrecision, Precision};
use snip_tensor::rng::Rng;

/// Local error metric used by the error-minimization baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorMetric {
    /// Absolute quantization error `‖q(t) − t‖_F`, summed over X, W, ∇Y.
    Absolute,
    /// Relative quantization error `‖q(t) − t‖_F / ‖t‖_F`, summed.
    Relative,
}

/// `min-abs-err` / `min-rel-err`: ILP-optimal layer selection under a local
/// error objective (paper §6.1: "For a fair comparison, we also use the ILP
/// solver ... where the quality loss Q is the absolute or relative
/// quantization error").
///
/// # Errors
///
/// Propagates solver failures (e.g. infeasible budget).
pub fn error_minimizing_scheme(
    stats: &StepStats,
    cfg: &ModelConfig,
    metric: ErrorMetric,
    target_fp4: f64,
) -> Result<Scheme, SolveError> {
    let options = OptionSet::fp8_fp4();
    let flops = FlopModel::new(cfg);
    let groups: Vec<Vec<Choice>> = stats
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| {
            options
                .options()
                .iter()
                .map(|&opt| {
                    let q = match metric {
                        ErrorMetric::Absolute => {
                            l.x_err.get(opt.input)
                                + l.w_err.get(opt.weight)
                                + l.dy_err.get(opt.grad)
                        }
                        ErrorMetric::Relative => {
                            l.x_err.get(opt.input) / l.x_norm.max(1e-12)
                                + l.w_err.get(opt.weight) / l.w_norm.max(1e-12)
                                + l.dy_err.get(opt.grad) / l.dy_norm.max(1e-12)
                        }
                    };
                    Choice::new(q, flops.efficiency(i, opt))
                })
                .collect()
        })
        .collect();
    let problem = McKnapsack::new(groups, target_fp4);
    let solution = solve(&problem, &SolveOptions::default())?;
    let assignments = solution
        .picks
        .iter()
        .map(|&j| options.options()[j])
        .collect();
    let name = match metric {
        ErrorMetric::Absolute => format!("min-abs-err@{:.0}", target_fp4 * 100.0),
        ErrorMetric::Relative => format!("min-rel-err@{:.0}", target_fp4 * 100.0),
    };
    Ok(Scheme::new(name, assignments))
}

/// `E-layer-type`: FP8 for the MLP Gate/Up projections, FP4 elsewhere.
pub fn e_layer_type(cfg: &ModelConfig) -> Scheme {
    let assignments = LayerId::enumerate(cfg.n_layers)
        .iter()
        .map(|id| {
            if matches!(id.kind, LayerKind::Gate | LayerKind::Up) {
                LinearPrecision::uniform(Precision::Fp8)
            } else {
                LinearPrecision::uniform(Precision::Fp4)
            }
        })
        .collect();
    Scheme::new("E-layer-type", assignments)
}

/// `E-layer-id`: FP4 for the middle layers, FP8 for the outermost blocks;
/// the FP4 window is sized to (approximately) meet the budget.
pub fn e_layer_id(cfg: &ModelConfig, target_fp4: f64) -> Scheme {
    let n_blocks = cfg.n_layers;
    let flops = FlopModel::new(cfg);
    // Grow a centered window of FP4 blocks until the budget is met.
    let mut fp4_blocks = vec![false; n_blocks];
    let mut scheme: Vec<LinearPrecision> =
        vec![LinearPrecision::uniform(Precision::Fp8); cfg.n_linear_layers()];
    let center = n_blocks / 2;
    let order: Vec<usize> = (0..n_blocks)
        .map(|i| {
            // visit blocks by distance from center
            let d = i / 2 + 1;
            if i % 2 == 0 {
                center.saturating_sub(d - 1)
            } else {
                (center + d - 1).min(n_blocks - 1)
            }
        })
        .collect();
    for b in order {
        if flops.scheme_fp4_fraction(&scheme) + 1e-12 >= target_fp4 {
            break;
        }
        if fp4_blocks[b] {
            continue;
        }
        fp4_blocks[b] = true;
        for kind in LayerKind::ALL {
            scheme[LayerId::new(b, kind).linear_index()] = LinearPrecision::uniform(Precision::Fp4);
        }
    }
    Scheme::new(format!("E-layer-id@{:.0}", target_fp4 * 100.0), scheme)
}

/// `random`: assigns FP4 to uniformly random layers until the budget is met.
pub fn random_scheme(cfg: &ModelConfig, target_fp4: f64, seed: u64) -> Scheme {
    let mut rng = Rng::seed_from(seed);
    let flops = FlopModel::new(cfg);
    let n = cfg.n_linear_layers();
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut assignments = vec![LinearPrecision::uniform(Precision::Fp8); n];
    for &i in &order {
        if flops.scheme_fp4_fraction(&assignments) + 1e-12 >= target_fp4 {
            break;
        }
        assignments[i] = LinearPrecision::uniform(Precision::Fp4);
    }
    Scheme::new(
        format!("random{seed}@{:.0}", target_fp4 * 100.0),
        assignments,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use snip_nn::{
        batch::Batch,
        model::{Model, StepOptions},
    };

    fn stats_for(cfg: &ModelConfig) -> StepStats {
        let mut model = Model::new(cfg.clone(), 41).unwrap();
        let mut rng = Rng::seed_from(42);
        let batch = Batch::from_sequences(
            &[
                vec![1, 2, 3, 4, 5, 6, 7, 8, 9],
                vec![2, 3, 5, 7, 11, 13, 1, 4, 6],
            ],
            8,
        );
        model.zero_grads();
        let out = model.step(&batch, &mut rng, &StepOptions::record());
        StepStats::from_record(&out.record.unwrap(), cfg)
    }

    #[test]
    fn error_minimizers_meet_budget() {
        let cfg = ModelConfig::tiny_test();
        let stats = stats_for(&cfg);
        let flops = FlopModel::new(&cfg);
        for metric in [ErrorMetric::Absolute, ErrorMetric::Relative] {
            for budget in [0.25, 0.5, 0.75] {
                let s = error_minimizing_scheme(&stats, &cfg, metric, budget).unwrap();
                let got = s.fp4_fraction(&flops);
                assert!(got + 1e-9 >= budget, "{metric:?}@{budget}: {got}");
            }
        }
    }

    #[test]
    fn abs_and_rel_can_differ() {
        let cfg = ModelConfig::tiny_test();
        let stats = stats_for(&cfg);
        let a = error_minimizing_scheme(&stats, &cfg, ErrorMetric::Absolute, 0.5).unwrap();
        let r = error_minimizing_scheme(&stats, &cfg, ErrorMetric::Relative, 0.5).unwrap();
        // Not a hard guarantee, but with heterogeneous norms the two metrics
        // should usually pick different layers; assert they at least produce
        // valid schemes of the right size.
        assert_eq!(a.n_layers(), cfg.n_linear_layers());
        assert_eq!(r.n_layers(), cfg.n_linear_layers());
    }

    #[test]
    fn e_layer_type_structure() {
        let cfg = ModelConfig::tiny_test();
        let s = e_layer_type(&cfg);
        for id in LayerId::enumerate(cfg.n_layers) {
            let expect = if matches!(id.kind, LayerKind::Gate | LayerKind::Up) {
                Precision::Fp8
            } else {
                Precision::Fp4
            };
            assert_eq!(s.layer(id), LinearPrecision::uniform(expect), "{id}");
        }
    }

    #[test]
    fn e_layer_id_puts_fp4_in_middle() {
        let cfg = ModelConfig::tinyllama_1b_sim();
        let s = e_layer_id(&cfg, 0.5);
        let flops = FlopModel::new(&cfg);
        assert!(s.fp4_fraction(&flops) >= 0.5 - 1e-9);
        // Middle block is FP4, first and last are FP8.
        let mid = LayerId::new(cfg.n_layers / 2, LayerKind::Q);
        let first = LayerId::new(0, LayerKind::Q);
        let last = LayerId::new(cfg.n_layers - 1, LayerKind::Q);
        assert_eq!(s.layer(mid), LinearPrecision::uniform(Precision::Fp4));
        assert_eq!(s.layer(first), LinearPrecision::uniform(Precision::Fp8));
        assert_eq!(s.layer(last), LinearPrecision::uniform(Precision::Fp8));
    }

    #[test]
    fn random_schemes_meet_budget_and_differ_by_seed() {
        let cfg = ModelConfig::tinyllama_1b_sim();
        let flops = FlopModel::new(&cfg);
        let s0 = random_scheme(&cfg, 0.5, 0);
        let s1 = random_scheme(&cfg, 0.5, 1);
        assert!(s0.fp4_fraction(&flops) >= 0.5 - 1e-9);
        assert!(s1.fp4_fraction(&flops) >= 0.5 - 1e-9);
        assert_ne!(s0.assignments(), s1.assignments());
    }
}
