//! Sensitivity-heuristic baselines from the related-work families the paper
//! positions itself against (§1, §7).
//!
//! * **Fisher-information selection** (FGMP-style \[32\]): layer sensitivity
//!   is the squared first-order loss perturbation — squared gradient norms
//!   (the empirical Fisher) times squared quantization error — for the
//!   *forward* operands only. This is the "impact on loss in the forward
//!   pass only" family (§7): no weight-divergence term, no optimizer
//!   dynamics, no cross-layer propagation.
//! * **Greedy iterative refinement** (BitSET \[56\] / HAQ \[72\] flavour):
//!   instead of solving the ILP, start from the all-FP4 assignment and
//!   repeatedly upgrade the single most cost-effective layer to FP8 while
//!   the efficiency budget still holds. Running it on SNIP's own quality
//!   metric isolates the value of *global* optimization (§5.2's claim that
//!   the ILP "ensures globally optimal solutions") from the value of the
//!   metric itself — the `ablation_solver` comparison in
//!   `baselines_extended`.
//!
//! Both produce budget-compliant [`Scheme`]s directly comparable to SNIP's.

use crate::options::{FlopModel, OptionSet};
use crate::scheme::Scheme;
use crate::stats::StepStats;
use snip_ilp::{solve, Choice, McKnapsack, SolveError, SolveOptions};
use snip_nn::ModelConfig;

/// Fisher-style forward-only sensitivity of one layer under one option:
/// `(‖∇X‖·‖δX‖)²/(M·K) + (‖∇W‖·‖δW‖)²/(N·K)`.
///
/// Squaring is what makes this "Fisher": the empirical Fisher information
/// is the squared gradient, so the score is the quadratic form
/// `δᵀ·F·δ` under the usual diagonal approximation, rather than SNIP's
/// first-order norm estimate.
pub fn fisher_sensitivity(
    stats: &crate::stats::LayerStats,
    option: snip_quant::LinearPrecision,
) -> f64 {
    let m = stats.tokens as f64;
    let n = stats.out_features as f64;
    let k = stats.in_features as f64;
    let x_term = (stats.dx_norm * stats.x_err.get(option.input)).powi(2) / (m * k);
    let w_term = (stats.dw_norm * stats.w_err.get(option.weight)).powi(2) / (n * k);
    x_term + w_term
}

/// `fisher`: ILP-optimal selection under the Fisher forward-only
/// sensitivity (the FGMP-style baseline).
///
/// # Errors
///
/// Propagates solver failures (e.g. an infeasible budget).
pub fn fisher_scheme(
    stats: &StepStats,
    cfg: &ModelConfig,
    target_fp4: f64,
) -> Result<Scheme, SolveError> {
    let options = OptionSet::fp8_fp4();
    let flops = FlopModel::new(cfg);
    let groups: Vec<Vec<Choice>> = stats
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| {
            options
                .options()
                .iter()
                .map(|&opt| Choice::new(fisher_sensitivity(l, opt), flops.efficiency(i, opt)))
                .collect()
        })
        .collect();
    let problem = McKnapsack::new(groups, target_fp4);
    let solution = solve(&problem, &SolveOptions::default())?;
    let assignments = solution
        .picks
        .iter()
        .map(|&j| options.options()[j])
        .collect();
    Ok(Scheme::new(
        format!("fisher@{:.0}", target_fp4 * 100.0),
        assignments,
    ))
}

/// Greedy iterative refinement over arbitrary per-layer option tables.
///
/// Starts every layer at its highest-efficiency option (all-FP4 for the
/// standard set), then repeatedly applies the single option change with the
/// best quality-improvement-per-efficiency-lost ratio that keeps the total
/// efficiency at or above `target`. Stops when no improving move fits the
/// budget. `quality[i][j]` / `efficiency[i][j]` index layer `i`, option `j`
/// in `options` order — the same tables the ILP consumes, so the two
/// solvers are directly comparable.
///
/// # Errors
///
/// [`SolveError::Invalid`] on shape mismatches; [`SolveError::Infeasible`]
/// if even the all-max-efficiency assignment misses the target.
pub fn greedy_refinement(
    quality: &[Vec<f64>],
    efficiency: &[Vec<f64>],
    options: &OptionSet,
    target: f64,
    name: impl Into<String>,
) -> Result<Scheme, SolveError> {
    let n_layers = quality.len();
    if efficiency.len() != n_layers {
        return Err(SolveError::Invalid(format!(
            "quality covers {n_layers} layers, efficiency {}",
            efficiency.len()
        )));
    }
    for (i, (q, e)) in quality.iter().zip(efficiency).enumerate() {
        if q.len() != options.len() || e.len() != options.len() {
            return Err(SolveError::Invalid(format!(
                "layer {i} has {} quality / {} efficiency entries for {} options",
                q.len(),
                e.len(),
                options.len()
            )));
        }
        if q.iter().chain(e).any(|v| !v.is_finite()) {
            return Err(SolveError::Invalid(format!(
                "layer {i} has non-finite quality/efficiency values"
            )));
        }
    }

    // Start from the highest-efficiency option per layer (ties → lower q).
    let mut picks: Vec<usize> = (0..n_layers)
        .map(|i| {
            (0..options.len())
                .max_by(|&a, &b| {
                    (efficiency[i][a], -quality[i][a])
                        .partial_cmp(&(efficiency[i][b], -quality[i][b]))
                        .expect("finite tables")
                })
                .expect("non-empty option set")
        })
        .collect();
    let mut total_e: f64 = picks
        .iter()
        .enumerate()
        .map(|(i, &j)| efficiency[i][j])
        .sum();
    if total_e + 1e-12 < target {
        return Err(SolveError::Infeasible);
    }

    loop {
        // Best improving move: maximize Δq/Δe (Δe = 0 → take immediately).
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n_layers {
            let j = picks[i];
            for j2 in 0..options.len() {
                let dq = quality[i][j] - quality[i][j2];
                if dq <= 0.0 {
                    continue;
                }
                let de = efficiency[i][j] - efficiency[i][j2];
                if total_e - de + 1e-12 < target {
                    continue;
                }
                let ratio = if de <= 0.0 { f64::INFINITY } else { dq / de };
                if best.is_none_or(|(_, _, r)| ratio > r) {
                    best = Some((i, j2, ratio));
                }
            }
        }
        match best {
            Some((i, j2, _)) => {
                total_e -= efficiency[i][picks[i]] - efficiency[i][j2];
                picks[i] = j2;
            }
            None => break,
        }
    }
    let assignments = picks.iter().map(|&j| options.options()[j]).collect();
    Ok(Scheme::new(name, assignments))
}

/// `greedy` on SNIP's own divergence analysis: the solver ablation — same
/// quality metric, greedy instead of ILP.
///
/// # Errors
///
/// Propagates [`greedy_refinement`] failures.
pub fn greedy_snip_scheme(
    analysis: &crate::divergence::Analysis,
    options: &OptionSet,
    target_fp4: f64,
) -> Result<Scheme, SolveError> {
    greedy_refinement(
        &analysis.quality,
        &analysis.efficiency,
        options,
        target_fp4,
        format!("greedy-snip@{:.0}", target_fp4 * 100.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use snip_nn::{
        batch::Batch,
        model::{Model, StepOptions},
    };
    use snip_quant::{LinearPrecision, Precision};
    use snip_tensor::rng::Rng;

    fn stats_for(cfg: &ModelConfig) -> StepStats {
        let mut model = Model::new(cfg.clone(), 71).unwrap();
        let mut rng = Rng::seed_from(72);
        let batch = Batch::from_sequences(
            &[
                vec![1, 4, 2, 5, 3, 6, 4, 7, 5],
                vec![2, 5, 3, 6, 4, 7, 5, 8, 6],
            ],
            8,
        );
        model.zero_grads();
        let out = model.step(&batch, &mut rng, &StepOptions::record());
        StepStats::from_record(&out.record.unwrap(), cfg)
    }

    #[test]
    fn fisher_scheme_meets_budget() {
        let cfg = ModelConfig::tiny_test();
        let stats = stats_for(&cfg);
        let flops = FlopModel::new(&cfg);
        for budget in [0.25, 0.5, 0.75] {
            let s = fisher_scheme(&stats, &cfg, budget).unwrap();
            assert!(s.fp4_fraction(&flops) + 1e-9 >= budget);
            assert_eq!(s.n_layers(), cfg.n_linear_layers());
        }
    }

    #[test]
    fn fisher_sensitivity_orders_options() {
        let cfg = ModelConfig::tiny_test();
        let stats = stats_for(&cfg);
        for l in &stats.layers {
            let f4 = fisher_sensitivity(l, LinearPrecision::uniform(Precision::Fp4));
            let f8 = fisher_sensitivity(l, LinearPrecision::uniform(Precision::Fp8));
            assert!(f4 > f8, "fp4 {f4} !> fp8 {f8}");
        }
    }

    /// Synthetic 4-layer tables with equal per-layer FLOPs: FP8 is free,
    /// FP4 costs `costs[i]`.
    fn tables(costs: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>, OptionSet) {
        let n = costs.len();
        let e = 1.0 / n as f64;
        (
            costs.iter().map(|&c| vec![0.0, c]).collect(),
            (0..n).map(|_| vec![0.0, e]).collect(),
            OptionSet::fp8_fp4(),
        )
    }

    #[test]
    fn greedy_picks_cheap_layers_for_fp4() {
        let (q, e, options) = tables(&[0.1, 9.0, 0.2, 8.0]);
        let s = greedy_refinement(&q, &e, &options, 0.5, "g").unwrap();
        assert_eq!(
            s.assignments(),
            &[
                LinearPrecision::uniform(Precision::Fp4),
                LinearPrecision::uniform(Precision::Fp8),
                LinearPrecision::uniform(Precision::Fp4),
                LinearPrecision::uniform(Precision::Fp8),
            ]
        );
    }

    #[test]
    fn greedy_respects_budget_exactly_at_the_boundary() {
        let (q, e, options) = tables(&[1.0, 1.0, 1.0, 1.0]);
        // Budget 0.75 → exactly one upgrade to FP8 allowed.
        let s = greedy_refinement(&q, &e, &options, 0.75, "g").unwrap();
        let fp8_count = s
            .assignments()
            .iter()
            .filter(|&&p| p == LinearPrecision::uniform(Precision::Fp8))
            .count();
        assert_eq!(fp8_count, 1);
    }

    #[test]
    fn greedy_infeasible_target_detected() {
        let (q, e, options) = tables(&[1.0; 4]);
        assert_eq!(
            greedy_refinement(&q, &e, &options, 1.1, "g").unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn greedy_shape_validation() {
        let (q, mut e, options) = tables(&[1.0; 4]);
        e.pop();
        assert!(matches!(
            greedy_refinement(&q, &e, &options, 0.5, "g"),
            Err(SolveError::Invalid(_))
        ));
    }

    #[test]
    fn greedy_zero_target_upgrades_everything() {
        let (q, e, options) = tables(&[1.0; 4]);
        let s = greedy_refinement(&q, &e, &options, 0.0, "g").unwrap();
        assert!(s
            .assignments()
            .iter()
            .all(|&p| p == LinearPrecision::uniform(Precision::Fp8)));
    }

    /// A lopsided instance where greedy's ratio rule is provably suboptimal:
    /// the ILP finds a strictly better objective. Layers have *unequal*
    /// efficiencies so the greedy ratio ordering misleads.
    #[test]
    fn greedy_can_lose_to_ilp() {
        // Two layers. Budget 0.5.
        //   layer 0: e = 0.5, FP4 cost 1.0
        //   layer 1: e = 0.5, FP4 cost 1.0, but with a *mixed* third option
        //            (e = 0.25, cost 0.05)
        // Optimal: layer0 FP4 + layer1 FP8? e = 0.5 ✓ cost 1.0.
        //          layer0 FP4 + layer1 mixed → e = 0.75, cost 1.05.
        //          both mixed → infeasible pairs aside…
        // The point of this test is weaker and robust: greedy's result is
        // never *better* than the ILP's on the same tables.
        let quality = [vec![0.0, 1.0], vec![0.0, 0.05, 1.0]];
        let efficiency = [vec![0.0, 0.5], vec![0.0, 0.25, 0.5]];
        // Pad option sets per layer to the same length for the Scheme
        // mapping: use a uniform 3-option set and a 2-option quality row
        // extended with an unusable option.
        let options = OptionSet::custom(vec![
            LinearPrecision::uniform(Precision::Fp8),
            LinearPrecision {
                input: Precision::Fp4,
                weight: Precision::Fp8,
                grad: Precision::Fp4,
            },
            LinearPrecision::uniform(Precision::Fp4),
        ]);
        let quality = vec![vec![0.0, 0.6, 1.0], quality[1].clone()];
        let efficiency = vec![vec![0.0, 0.25, 0.5], efficiency[1].clone()];
        let greedy = greedy_refinement(&quality, &efficiency, &options, 0.5, "g").unwrap();
        // ILP reference on identical tables.
        let groups: Vec<Vec<Choice>> = (0..2)
            .map(|i| {
                (0..3)
                    .map(|j| Choice::new(quality[i][j], efficiency[i][j]))
                    .collect()
            })
            .collect();
        let ilp = solve(&McKnapsack::new(groups, 0.5), &SolveOptions::default()).unwrap();
        let greedy_cost: f64 = greedy
            .assignments()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let j = options.options().iter().position(|o| o == p).unwrap();
                quality[i][j]
            })
            .sum();
        assert!(
            ilp.objective <= greedy_cost + 1e-12,
            "ILP {} must be ≤ greedy {greedy_cost}",
            ilp.objective
        );
    }
}
