//! Training-loop orchestration with periodic SNIP scheme updates and
//! checkpointing.
//!
//! The paper's evaluation protocol (§6.1) resumes pretraining from saved
//! intermediate checkpoints under different quantization schemes. [`Trainer`]
//! packages model + optimizer + data stream + RNG into one serializable unit
//! so experiments can create checkpoints and branch from them exactly.

use crate::engine::SnipEngine;
use crate::scheme::Scheme;
use serde::{Deserialize, Serialize};
use snip_data::BatchStream;
use snip_nn::model::{Model, StepOptions, StepOutput};
use snip_nn::ModelConfig;
use snip_optim::{clip::clip_global_norm, AdamW, AdamWConfig, LrSchedule};
use snip_tensor::rng::Rng;
use std::path::Path;

/// Full trainer configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Model hyperparameters.
    pub model: ModelConfig,
    /// Optimizer hyperparameters.
    pub adamw: AdamWConfig,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// Sequences per batch.
    pub batch_size: usize,
    /// Tokens per sequence.
    pub seq_len: usize,
    /// Global gradient-norm clip (None = no clipping).
    pub grad_clip: Option<f64>,
    /// Seed for the data stream.
    pub data_seed: u64,
    /// Seed for parameter initialization.
    pub init_seed: u64,
    /// Synthetic-language parameters (vocab is overridden by the model's
    /// vocab size). Defaults match [`snip_data::LanguageConfig::default`].
    #[serde(default)]
    pub language: snip_data::LanguageConfig,
}

impl TrainerConfig {
    /// A small, fast configuration for tests and examples.
    pub fn tiny() -> Self {
        TrainerConfig {
            model: ModelConfig::tiny_test(),
            adamw: AdamWConfig {
                lr: 3e-3,
                ..Default::default()
            },
            schedule: LrSchedule::Constant { lr: 3e-3 },
            batch_size: 2,
            seq_len: 16,
            grad_clip: Some(1.0),
            data_seed: 0,
            init_seed: 0,
            language: snip_data::LanguageConfig::default(),
        }
    }

    /// The same configuration with a different optimizer moment-state
    /// precision (`MomentPrecision::PackedFp8` turns on bit-packed FP8
    /// AdamW moments; master weights stay f32 per paper §4.3.2).
    pub fn with_moment_precision(mut self, moments: snip_optim::MomentPrecision) -> Self {
        self.adamw.moments = moments;
        self
    }
}

/// A resumable trainer (model + optimizer + data + RNG + step counter).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trainer {
    cfg: TrainerConfig,
    /// The model being trained.
    pub model: Model,
    /// The optimizer.
    pub optimizer: AdamW,
    stream: BatchStream,
    rng: Rng,
    step: u64,
    /// Loss of the most recent training step (0.0 before the first step).
    /// Feeds the `"training"` section of the per-run telemetry report;
    /// `default` keeps checkpoints from before this field loadable.
    #[serde(default)]
    last_loss: f64,
}

impl Trainer {
    /// Builds a fresh trainer.
    ///
    /// # Errors
    ///
    /// Returns the model-config validation message on inconsistency.
    pub fn new(cfg: TrainerConfig) -> Result<Self, String> {
        let model = Model::new(cfg.model.clone(), cfg.init_seed)?;
        let optimizer = AdamW::new(cfg.adamw);
        let language = snip_data::SyntheticLanguage::new(
            snip_data::LanguageConfig {
                vocab: cfg.model.vocab_size,
                ..cfg.language.clone()
            },
            cfg.data_seed,
        );
        let stream = BatchStream::new(language, cfg.data_seed, cfg.batch_size, cfg.seq_len);
        Ok(Trainer {
            rng: Rng::seed_from(cfg.init_seed ^ 0x7841_1234),
            cfg,
            model,
            optimizer,
            stream,
            step: 0,
            last_loss: 0.0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Steps taken so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Applies a quantization scheme to the model (SNIP Step 6).
    pub fn apply_scheme(&mut self, scheme: &Scheme) {
        scheme.apply(&mut self.model);
    }

    /// Runs one training step; returns the batch loss.
    pub fn train_step(&mut self) -> f64 {
        self.train_step_with_grad_hook(&mut |_| {})
    }

    /// [`Trainer::train_step`] with a gradient hook: after backward fills
    /// the parameter gradients and **before** clipping and the optimizer
    /// update, `hook` gets the model to transform its gradients in place.
    ///
    /// This is the data-parallel integration point — a hook that all-reduces
    /// every `Param::grad_mut` across ranks (e.g. over
    /// `snip_pipeline::transport`) turns `R` trainers on `R` threads into
    /// one synchronous data-parallel run, with clipping and the update
    /// applied to the *reduced* gradient exactly as a real DP trainer does.
    pub fn train_step_with_grad_hook(&mut self, hook: &mut dyn FnMut(&mut Model)) -> f64 {
        self.train_step_output_with_grad_hook(hook).loss
    }

    /// [`Trainer::train_step_with_grad_hook`] returning the full
    /// [`StepOutput`] — loss plus the per-step wall-time breakdown
    /// (`step_ns` / `quantize_ns` / `gemm_ns`, populated when `SNIP_TRACE`
    /// collection is on) that `comm_precision` tabulates. The whole step —
    /// forward/backward, gradient hook, clipping and the optimizer update —
    /// runs under a `"train_step"` telemetry span, and the step count and
    /// latest loss land in the registry (`trainer.steps` counter,
    /// `trainer.loss` gauge).
    pub fn train_step_output_with_grad_hook(
        &mut self,
        hook: &mut dyn FnMut(&mut Model),
    ) -> StepOutput {
        match self.step_core::<std::convert::Infallible>(&mut |model| {
            hook(model);
            Ok(())
        }) {
            Ok(out) => out,
            Err(e) => match e {},
        }
    }

    /// The fallible step body shared by the infallible and recoverable
    /// paths. A hook error aborts the step **before** clipping, the
    /// optimizer update, the step-count bump and the telemetry counters —
    /// but the batch stream, data-order RNG and gradients have already
    /// advanced, so recovery needs [`Trainer::try_train_step_with_grad_hook`]'s
    /// snapshot/restore on top.
    fn step_core<E>(
        &mut self,
        hook: &mut dyn FnMut(&mut Model) -> Result<(), E>,
    ) -> Result<StepOutput, E> {
        let _span = snip_obs::span("train_step");
        let lr = self.cfg.schedule.lr_at(self.step);
        self.optimizer.set_lr(lr);
        let batch = self.stream.next_batch();
        self.model.zero_grads();
        let out = self
            .model
            .step(&batch, &mut self.rng, &StepOptions::train());
        hook(&mut self.model)?;
        if let Some(max) = self.cfg.grad_clip {
            clip_global_norm(&mut self.model, max);
        }
        self.optimizer.update(&mut self.model);
        self.step += 1;
        self.last_loss = out.loss;
        if snip_obs::enabled() {
            snip_obs::counter_add("trainer.steps", 1);
            snip_obs::gauge_set("trainer.loss", out.loss);
        }
        Ok(out)
    }

    /// The recovery hook for distributed training: one training step whose
    /// gradient hook may fail (e.g. an all-reduce over a faulted
    /// transport). On `Ok` the step completed exactly as
    /// [`Trainer::train_step_with_grad_hook`] would have. On `Err` the
    /// trainer is restored **bit-for-bit** to its pre-step state — model,
    /// optimizer, batch stream and RNG rewind as if the step never started
    /// — so a launcher that restarts the world can retry the step from the
    /// last good parameters and reach the same final state an unfaulted run
    /// produces.
    ///
    /// The pre-step snapshot is a full trainer clone, so this costs one
    /// deep copy per step; the infallible paths skip it entirely.
    ///
    /// # Errors
    ///
    /// Whatever error the hook returned; the step's effects are rolled
    /// back.
    pub fn try_train_step_with_grad_hook<E>(
        &mut self,
        hook: &mut dyn FnMut(&mut Model) -> Result<(), E>,
    ) -> Result<f64, E> {
        let snapshot = self.clone();
        match self.step_core(hook) {
            Ok(out) => Ok(out.loss),
            Err(e) => {
                *self = snapshot;
                Err(e)
            }
        }
    }

    /// Runs `n` steps of [`Trainer::train_step_with_grad_hook`], returning
    /// each step's loss. This is the loop body both data-parallel backends
    /// (threaded and multi-process, `snip_pipeline::transport`) drive: one
    /// shared definition, so a rank's step sequence cannot drift between
    /// transports.
    pub fn train_with_grad_hook(&mut self, n: u64, hook: &mut dyn FnMut(&mut Model)) -> Vec<f64> {
        (0..n)
            .map(|_| self.train_step_with_grad_hook(hook))
            .collect()
    }

    /// Runs `n` steps, returning each step's loss.
    pub fn train(&mut self, n: u64) -> Vec<f64> {
        (0..n).map(|_| self.train_step()).collect()
    }

    /// Runs `n` steps with a periodic SNIP engine: statistics are collected
    /// and a new scheme solved every `engine.config().update_period` steps
    /// (asynchronously), and applied as soon as it is ready — the Fig. 6
    /// integration. Returns each step's loss.
    pub fn train_with_engine(&mut self, n: u64, engine: &SnipEngine) -> Vec<f64> {
        let mut losses = Vec::with_capacity(n as usize);
        for _ in 0..n {
            if engine.is_update_due(self.step) {
                let batch = self.stream.next_batch();
                let name = format!("snip@step{}", self.step);
                engine.submit(
                    &mut self.model,
                    &self.optimizer,
                    &batch,
                    &mut self.rng,
                    name,
                );
            }
            if let Some(Ok(scheme)) = engine.try_collect() {
                self.apply_scheme(&scheme);
            }
            losses.push(self.train_step());
        }
        losses
    }

    /// Mean loss over `batches` held-out batches (fixed by `seed`).
    pub fn validation_loss(&mut self, seed: u64, batches: usize) -> f64 {
        let mut total = 0.0;
        for b in 0..batches {
            let batch = self.stream.validation_batch(seed.wrapping_add(b as u64));
            total += self.model.forward_loss(&batch, &mut self.rng);
        }
        total / batches.max(1) as f64
    }

    /// Draws the next training batch without consuming it for training
    /// (useful for measurement probes).
    pub fn peek_batch(&mut self) -> snip_nn::Batch {
        self.stream.next_batch()
    }

    /// Publishes this trainer's run summary as the `"training"` section of
    /// the telemetry report and writes the run artifacts (the Chrome trace
    /// and `RUN_REPORT.json` next to it) if `SNIP_TRACE` named a path.
    /// `world` is the number of data-parallel ranks the run used (1 for a
    /// single-trainer run). Returns the artifact paths, or `Ok(None)` when
    /// collection is off or no path was configured. Safe to call after
    /// `data_parallel_train` already flushed: the flush is idempotent and
    /// rewrites the artifacts from the full registry state.
    ///
    /// # Errors
    ///
    /// I/O failures writing the artifacts.
    pub fn write_run_report(&self, world: usize) -> std::io::Result<Option<snip_obs::Artifacts>> {
        if snip_obs::enabled() {
            use serde::Content;
            snip_obs::report::set_section(
                "training",
                Content::Map(vec![
                    ("steps".into(), Content::U64(self.step)),
                    ("world".into(), Content::U64(world as u64)),
                    ("final_loss".into(), Content::F64(self.last_loss)),
                ]),
            );
        }
        snip_obs::flush()
    }

    /// Saves the full trainer state as JSON.
    ///
    /// # Errors
    ///
    /// I/O or serialization failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), std::io::Error> {
        let json = serde_json::to_vec(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Restores a trainer saved by [`Trainer::save`].
    ///
    /// # Errors
    ///
    /// I/O or deserialization failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, std::io::Error> {
        let bytes = std::fs::read(path)?;
        serde_json::from_slice(&bytes).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SnipConfig;
    use crate::policy::PolicyConfig;

    #[test]
    fn training_reduces_loss() {
        let mut t = Trainer::new(TrainerConfig::tiny()).unwrap();
        let first = t.train(5).iter().sum::<f64>() / 5.0;
        let _ = t.train(60);
        let last = t.train(5).iter().sum::<f64>() / 5.0;
        assert!(last < first, "loss {first} -> {last}");
        assert_eq!(t.step_count(), 70);
    }

    #[test]
    fn grad_hook_sees_fresh_gradients_and_identity_hook_matches_train_step() {
        let mut plain = Trainer::new(TrainerConfig::tiny()).unwrap();
        let mut hooked = Trainer::new(TrainerConfig::tiny()).unwrap();
        let a = plain.train(3);
        let mut calls = 0usize;
        let b: Vec<f64> = (0..3)
            .map(|_| {
                hooked.train_step_with_grad_hook(&mut |model| {
                    calls += 1;
                    assert!(model.grad_norm() > 0.0, "hook must run after backward");
                })
            })
            .collect();
        assert_eq!(a, b, "an observing hook must not change the trajectory");
        assert_eq!(calls, 3);
    }

    #[test]
    fn checkpoint_round_trip_is_exact() {
        let dir = std::env::temp_dir().join("snip_trainer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");

        let mut t = Trainer::new(TrainerConfig::tiny()).unwrap();
        let _ = t.train(10);
        t.save(&path).unwrap();
        let mut restored = Trainer::load(&path).unwrap();
        assert_eq!(restored.step_count(), t.step_count());
        // Continuing from the checkpoint must match continuing the original.
        let a = t.train(3);
        let b = restored.train(3);
        assert_eq!(a, b, "checkpoint resume must be bit-exact");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_step_rolls_back_to_bit_identical_state() {
        let mut t = Trainer::new(TrainerConfig::tiny()).unwrap();
        let _ = t.train(4);
        let before = serde_json::to_vec(&t).unwrap();
        let failed = t.try_train_step_with_grad_hook(&mut |_model| Err("link died"));
        assert_eq!(failed, Err("link died"));
        let after = serde_json::to_vec(&t).unwrap();
        assert_eq!(
            before, after,
            "a failed step must leave no trace — model, optimizer, stream and RNG rewind"
        );
        // And the retried step matches a trainer that never saw the fault.
        let mut calm = Trainer::new(TrainerConfig::tiny()).unwrap();
        let _ = calm.train(4);
        let retried = t
            .try_train_step_with_grad_hook::<&str>(&mut |_model| Ok(()))
            .unwrap();
        assert_eq!(retried, calm.train(1)[0]);
        assert_eq!(t.step_count(), 5);
    }

    #[test]
    fn scheme_application_persists_through_steps() {
        use snip_quant::Precision;
        let mut t = Trainer::new(TrainerConfig::tiny()).unwrap();
        let scheme = Scheme::uniform(Precision::Fp4, t.config().model.n_linear_layers());
        t.apply_scheme(&scheme);
        let _ = t.train(3);
        assert_eq!(t.model.scheme(), scheme.assignments());
    }

    #[test]
    fn engine_integration_applies_schemes_periodically() {
        let cfg = TrainerConfig::tiny();
        let mut t = Trainer::new(cfg.clone()).unwrap();
        let _ = t.train(5); // warm the optimizer
        let engine = SnipEngine::new(
            SnipConfig {
                policy: PolicyConfig {
                    target_fp4: 0.5,
                    ..Default::default()
                },
                update_period: 5,
                ..Default::default()
            },
            cfg.model.clone(),
        );
        let losses = t.train_with_engine(20, &engine);
        assert_eq!(losses.len(), 20);
        assert!(losses.iter().all(|l| l.is_finite()));
        // After at least one update cycle the model should not be uniformly
        // BF16 anymore.
        use snip_quant::{LinearPrecision, Precision};
        let scheme = t.model.scheme();
        assert!(
            scheme
                .iter()
                .any(|&p| p != LinearPrecision::uniform(Precision::Bf16)),
            "engine never applied a scheme"
        );
    }

    #[test]
    fn packed_fp8_moments_train_and_checkpoint_exactly() {
        use snip_optim::MomentPrecision;
        let cfg = TrainerConfig::tiny().with_moment_precision(MomentPrecision::PackedFp8);
        let mut t = Trainer::new(cfg).unwrap();
        let first = t.train(5).iter().sum::<f64>() / 5.0;
        let _ = t.train(40);
        let last = t.train(5).iter().sum::<f64>() / 5.0;
        assert!(last < first, "loss {first} -> {last}");

        // Packed moment state must be measurably smaller than the f32 run's.
        let mut dense = Trainer::new(TrainerConfig::tiny()).unwrap();
        let _ = dense.train(5);
        let ratio =
            dense.optimizer.moment_state_bytes() as f64 / t.optimizer.moment_state_bytes() as f64;
        assert!(ratio >= 3.0, "moment bytes only {ratio:.2}x smaller");

        // Checkpoint resume stays bit-exact with packed moments: the codes
        // and scales serialize verbatim.
        let dir =
            std::env::temp_dir().join(format!("snip_trainer_packed_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        t.save(&path).unwrap();
        let mut restored = Trainer::load(&path).unwrap();
        let a = t.train(3);
        let b = restored.train(3);
        assert_eq!(a, b, "packed-moment resume must be bit-exact");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn packed_moments_stay_within_divergence_tolerance_of_f32() {
        // The §4.3.2-style sanity check at the trainer level: swapping the
        // moment storage must not change training quality beyond the noise
        // the paper's divergence tolerance allows.
        use snip_optim::MomentPrecision;
        let mut dense = Trainer::new(TrainerConfig::tiny()).unwrap();
        let mut packed =
            Trainer::new(TrainerConfig::tiny().with_moment_precision(MomentPrecision::PackedFp8))
                .unwrap();
        let _ = dense.train(60);
        let _ = packed.train(60);
        let dense_val = dense.validation_loss(3, 4);
        let packed_val = packed.validation_loss(3, 4);
        assert!(
            (packed_val / dense_val - 1.0).abs() < 0.05,
            "packed-moment validation loss {packed_val} vs f32 {dense_val}"
        );
    }

    #[test]
    fn validation_loss_is_deterministic_given_seed() {
        let mut t = Trainer::new(TrainerConfig::tiny()).unwrap();
        let _ = t.train(5);
        let a = t.validation_loss(9, 2);
        let b = t.validation_loss(9, 2);
        assert_eq!(a, b);
    }
}
