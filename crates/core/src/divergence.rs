//! Divergence analysis (SNIP Step 4, paper §4).
//!
//! Two metrics quantify the quality impact of quantizing each layer:
//!
//! * **Loss divergence** (§4.2, forward pass): quantization perturbations of
//!   `X_l` and `W_l` move the loss by approximately
//!   `‖∇L‖_F · ‖δ‖_F / √dim` (Theorem 4.1), combined in quadrature and
//!   normalized by `|L|` (Definition 4.3).
//! * **Weight divergence** (§4.3, backward pass): quantization errors in the
//!   backward GEMMs perturb weight *gradients* — both of the quantized layer
//!   itself and, through error propagation, of other layers — and those
//!   gradient errors pass through the AdamW update sensitivity `h′(g)`
//!   (§4.3.2) into weight error, normalized per Definition 4.4.
//!
//! The cross-layer propagation strengths use the measured probe profiles
//! (Theorem 4.2, single-sample estimates from Steps 2–3): `p_bwd[l]` is
//! layer `l`'s gradient response per unit of noise entering the backward
//! pass at the top, `p_fwd[l]` per unit of forward activation noise. We
//! model quantizing layer `i` as injecting noise at layer `i` whose effect
//! follows these profiles — the same one-site approximation the paper makes
//! ("we approximate the expectation by a single sample per batch").

use crate::options::{FlopModel, OptionSet};
use crate::probe::SnipMeasurement;
use crate::stats::LayerStats;
use serde::{Deserialize, Serialize};
use snip_nn::ModelConfig;
use snip_quant::LinearPrecision;

/// Per-layer, per-option divergence estimates plus the assembled ILP inputs.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Analysis {
    /// Loss divergence `ΔL_{i,j}` per layer `i` and option `j`.
    pub loss_div: Vec<Vec<f64>>,
    /// Weight divergence `ΔW_{i,j}`.
    pub weight_div: Vec<Vec<f64>>,
    /// Quality loss `q_{i,j} = ΔL + ΔW` (the ILP objective coefficients).
    pub quality: Vec<Vec<f64>>,
    /// Efficiency savings `e_{i,j}` (fraction of model FLOPs moved to FP4).
    pub efficiency: Vec<Vec<f64>>,
}

impl Analysis {
    /// Per-layer quality loss of switching from the first option (FP8) to
    /// the last (FP4) — the "importance" visualized in paper Fig. 10.
    pub fn fp4_sensitivity(&self) -> Vec<f64> {
        self.quality
            .iter()
            .map(|q| q.last().unwrap() - q.first().unwrap())
            .collect()
    }
}

/// Loss divergence of one layer under one option (paper §4.2):
///
/// `ΔL = √( (‖∇_X L‖·‖δX‖/√(M·K))² + (‖∇_W L‖·‖δW‖/√(N·K))² ) / |L|`
pub fn loss_divergence(stats: &LayerStats, loss: f64, option: LinearPrecision) -> f64 {
    let m = stats.tokens as f64;
    let n = stats.out_features as f64;
    let k = stats.in_features as f64;
    let dx_term = stats.dx_norm * stats.x_err.get(option.input) / (m * k).sqrt();
    let dw_term = stats.dw_norm * stats.w_err.get(option.weight) / (n * k).sqrt();
    let delta = (dx_term * dx_term + dw_term * dw_term).sqrt();
    if loss.abs() > 0.0 {
        delta / loss.abs()
    } else {
        delta
    }
}

/// First-order noise magnitudes injected by quantizing one layer with one
/// option, derived from Theorem 4.1 applied to the three GEMMs of Fig. 5.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct InjectedNoise {
    /// Error in the layer's own weight gradient `dW = dYᵀ·X`.
    pub direct: f64,
    /// Error entering the backward stream through `dX = dY·W`.
    pub backward: f64,
    /// Error entering the forward stream through `Y = X·Wᵀ`.
    pub forward: f64,
}

/// Computes the injected-noise magnitudes for a layer/option pair.
pub fn injected_noise(stats: &LayerStats, option: LinearPrecision) -> InjectedNoise {
    let m = (stats.tokens as f64).sqrt();
    let n = (stats.out_features as f64).sqrt();
    let k = (stats.in_features as f64).sqrt();
    let dy_err = stats.dy_err.get(option.grad);
    let x_err = stats.x_err.get(option.input);
    let w_err = stats.w_err.get(option.weight);
    InjectedNoise {
        // δ(dW) ≈ ‖δdY‖·‖X‖/√M + ‖dY‖·‖δX‖/√M
        direct: (dy_err * stats.x_norm + stats.dy_norm * x_err) / m,
        // δ(dX) ≈ ‖δdY‖·‖W‖/√N + ‖dY‖·‖δW‖/√N
        backward: (dy_err * stats.w_norm + stats.dy_norm * w_err) / n,
        // δY ≈ ‖δX‖·‖W‖/√K + ‖X‖·‖δW‖/√K
        forward: (x_err * stats.w_norm + stats.x_norm * w_err) / k,
    }
}

/// Weight divergence of quantizing layer `i` with `option` (§4.3): the sum
/// over all layers `l` of the induced weight-update error, via the AdamW
/// sensitivity, normalized per Definition 4.4.
pub fn weight_divergence(m: &SnipMeasurement, i: usize, option: LinearPrecision) -> f64 {
    let n_layers = m.stats.layers.len();
    let noise = injected_noise(&m.stats.layers[i], option);
    let mut total = 0.0;
    for l in 0..n_layers {
        // Gradient error at layer l caused by quantization at layer i.
        let mut dg = 0.0;
        if l == i {
            dg += noise.direct;
        }
        // Backward-stream noise from layer i reaches layers below it.
        if l <= i {
            dg += m.p_bwd[l] * noise.backward;
        }
        // Forward-stream noise perturbs the loss and thus every gradient.
        dg += m.p_fwd[l] * noise.forward;
        let w_norm = m.stats.layers[l].w_norm.max(1e-12);
        total += m.h_sens[l] * dg / w_norm;
    }
    total / n_layers as f64
}

/// Runs the full Step-4 analysis: per-layer/per-option loss and weight
/// divergence, quality `q = ΔL + ΔW` (§5.1) and efficiency coefficients.
pub fn analyze(
    m: &SnipMeasurement,
    cfg: &ModelConfig,
    options: &OptionSet,
    flops: &FlopModel,
) -> Analysis {
    let n_layers = cfg.n_linear_layers();
    assert_eq!(
        m.stats.layers.len(),
        n_layers,
        "measurement/config mismatch"
    );
    let mut loss_div = Vec::with_capacity(n_layers);
    let mut weight_div = Vec::with_capacity(n_layers);
    let mut quality = Vec::with_capacity(n_layers);
    let mut efficiency = Vec::with_capacity(n_layers);
    for i in 0..n_layers {
        let stats = &m.stats.layers[i];
        let mut ld = Vec::with_capacity(options.len());
        let mut wd = Vec::with_capacity(options.len());
        let mut q = Vec::with_capacity(options.len());
        let mut e = Vec::with_capacity(options.len());
        for &opt in options.options() {
            let l = loss_divergence(stats, m.stats.loss, opt);
            let w = weight_divergence(m, i, opt);
            ld.push(l);
            wd.push(w);
            q.push(l + w);
            e.push(flops.efficiency(i, opt));
        }
        loss_div.push(ld);
        weight_div.push(wd);
        quality.push(q);
        efficiency.push(e);
    }
    Analysis {
        loss_div,
        weight_div,
        quality,
        efficiency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::measure;
    use snip_nn::{
        batch::Batch,
        model::{Model, StepOptions},
    };
    use snip_optim::{AdamW, AdamWConfig};
    use snip_quant::Precision;
    use snip_tensor::rng::Rng;

    fn measurement() -> (SnipMeasurement, ModelConfig) {
        let cfg = ModelConfig::tiny_test();
        let mut model = Model::new(cfg.clone(), 31).unwrap();
        let mut rng = Rng::seed_from(32);
        let batch = Batch::from_sequences(
            &[
                vec![1, 2, 3, 4, 5, 6, 7, 8, 9],
                vec![9, 7, 5, 3, 1, 2, 4, 6, 8],
            ],
            8,
        );
        let mut opt = AdamW::new(AdamWConfig::default());
        for _ in 0..3 {
            model.zero_grads();
            let _ = model.step(&batch, &mut rng, &StepOptions::train());
            opt.update(&mut model);
        }
        (measure(&mut model, &opt, &batch, &mut rng, 1e-2), cfg)
    }

    #[test]
    fn fp4_diverges_more_than_fp8() {
        let (m, cfg) = measurement();
        let options = OptionSet::fp8_fp4();
        let flops = FlopModel::new(&cfg);
        let a = analyze(&m, &cfg, &options, &flops);
        for i in 0..cfg.n_linear_layers() {
            assert!(
                a.quality[i][1] > a.quality[i][0],
                "layer {i}: fp4 quality {} !> fp8 {}",
                a.quality[i][1],
                a.quality[i][0]
            );
            assert!(a.loss_div[i][1] > 0.0);
            assert!(a.weight_div[i][1] > 0.0);
            assert!(a.efficiency[i][1] > a.efficiency[i][0]);
        }
    }

    #[test]
    fn efficiencies_sum_to_one_for_fp4_column() {
        let (m, cfg) = measurement();
        let options = OptionSet::fp8_fp4();
        let flops = FlopModel::new(&cfg);
        let a = analyze(&m, &cfg, &options, &flops);
        let total: f64 = (0..cfg.n_linear_layers()).map(|i| a.efficiency[i][1]).sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn loss_divergence_respects_error_magnitude() {
        let (m, _) = measurement();
        let s = &m.stats.layers[0];
        let fp8 = loss_divergence(s, m.stats.loss, LinearPrecision::uniform(Precision::Fp8));
        let fp4 = loss_divergence(s, m.stats.loss, LinearPrecision::uniform(Precision::Fp4));
        assert!(fp4 > fp8 * 2.0, "fp4 {fp4} vs fp8 {fp8}");
    }

    #[test]
    fn injected_noise_components_positive() {
        let (m, _) = measurement();
        let n = injected_noise(&m.stats.layers[3], LinearPrecision::uniform(Precision::Fp4));
        assert!(n.direct > 0.0);
        assert!(n.backward > 0.0);
        assert!(n.forward > 0.0);
    }

    #[test]
    fn weight_divergence_monotone_in_option_fidelity() {
        let (m, _) = measurement();
        for i in [0usize, 7, 13] {
            let w8 = weight_divergence(&m, i, LinearPrecision::uniform(Precision::Fp8));
            let w4 = weight_divergence(&m, i, LinearPrecision::uniform(Precision::Fp4));
            assert!(w4 > w8, "layer {i}: {w4} !> {w8}");
        }
    }

    #[test]
    fn fp4_sensitivity_has_layer_structure() {
        let (m, cfg) = measurement();
        let options = OptionSet::fp8_fp4();
        let flops = FlopModel::new(&cfg);
        let a = analyze(&m, &cfg, &options, &flops);
        let sens = a.fp4_sensitivity();
        assert_eq!(sens.len(), cfg.n_linear_layers());
        assert!(sens.iter().all(|&s| s > 0.0));
        // Not all layers equally sensitive.
        let max = sens.iter().cloned().fold(0.0f64, f64::max);
        let min = sens.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 1.5 * min, "sensitivities suspiciously flat: {sens:?}");
    }
}
