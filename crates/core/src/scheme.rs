//! Layer-wise quantization schemes (the "FPX scheme" of paper Fig. 6).

use crate::options::FlopModel;
use serde::{Deserialize, Serialize};
use snip_nn::{LayerId, LayerKind, Model, ModelConfig};
use snip_quant::{LinearPrecision, Precision};

/// A complete per-layer precision assignment, indexed by
/// [`LayerId::linear_index`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scheme {
    /// Short name ("snip@75", "min-abs-err@50", "fp8", …).
    pub name: String,
    assignments: Vec<LinearPrecision>,
}

impl Scheme {
    /// Creates a named scheme.
    pub fn new(name: impl Into<String>, assignments: Vec<LinearPrecision>) -> Self {
        Scheme {
            name: name.into(),
            assignments,
        }
    }

    /// A uniform scheme over `n_linear` layers.
    pub fn uniform(p: Precision, n_linear: usize) -> Self {
        Scheme {
            name: p.label().to_string(),
            assignments: vec![LinearPrecision::uniform(p); n_linear],
        }
    }

    /// The per-layer assignments.
    pub fn assignments(&self) -> &[LinearPrecision] {
        &self.assignments
    }

    /// Assignment of one layer.
    pub fn layer(&self, id: LayerId) -> LinearPrecision {
        self.assignments[id.linear_index()]
    }

    /// Overrides one layer's assignment.
    pub fn set_layer(&mut self, id: LayerId, p: LinearPrecision) {
        self.assignments[id.linear_index()] = p;
    }

    /// Number of linear layers covered.
    pub fn n_layers(&self) -> usize {
        self.assignments.len()
    }

    /// Applies this scheme to a model (SNIP Step 6).
    ///
    /// # Panics
    ///
    /// Panics if the scheme length doesn't match the model.
    pub fn apply(&self, model: &mut Model) {
        model.set_scheme(&self.assignments);
    }

    /// FP4 FLOP fraction under the given FLOP model (the paper's efficiency
    /// metric).
    pub fn fp4_fraction(&self, flops: &FlopModel) -> f64 {
        flops.scheme_fp4_fraction(&self.assignments)
    }

    /// Renders the scheme as the layer-id × layer-type grid used in paper
    /// Figs. 7/11/12 (`4` = FP4, `8` = FP8, `-` = BF16), one row per block.
    pub fn render_grid(&self, cfg: &ModelConfig) -> String {
        let mut out = String::new();
        out.push_str("        ");
        for kind in LayerKind::ALL {
            out.push_str(&format!("{:>5}", kind.label()));
        }
        out.push('\n');
        for block in 0..cfg.n_layers {
            out.push_str(&format!("L{block:<3}    "));
            for kind in LayerKind::ALL {
                let p = self.layer(LayerId::new(block, kind));
                let c = if p == LinearPrecision::uniform(Precision::Fp4) {
                    '4'
                } else if p == LinearPrecision::uniform(Precision::Fp8) {
                    '8'
                } else if p == LinearPrecision::uniform(Precision::Bf16) {
                    '-'
                } else {
                    'm' // mixed triple
                };
                out.push_str(&format!("{c:>5}"));
            }
            out.push('\n');
        }
        out
    }

    /// Count of layers assigned uniform FP4.
    pub fn fp4_layer_count(&self) -> usize {
        self.assignments
            .iter()
            .filter(|&&p| p == LinearPrecision::uniform(Precision::Fp4))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_construction() {
        let s = Scheme::uniform(Precision::Fp8, 14);
        assert_eq!(s.n_layers(), 14);
        assert_eq!(s.name, "fp8");
        assert!(s
            .assignments()
            .iter()
            .all(|&p| p == LinearPrecision::uniform(Precision::Fp8)));
    }

    #[test]
    fn layer_access_round_trip() {
        let mut s = Scheme::uniform(Precision::Fp8, 14);
        let id = LayerId::new(1, LayerKind::Down);
        s.set_layer(id, LinearPrecision::uniform(Precision::Fp4));
        assert_eq!(s.layer(id), LinearPrecision::uniform(Precision::Fp4));
        assert_eq!(s.fp4_layer_count(), 1);
    }

    #[test]
    fn apply_to_model() {
        let cfg = ModelConfig::tiny_test();
        let mut model = Model::new(cfg.clone(), 0).unwrap();
        let mut s = Scheme::uniform(Precision::Fp4, cfg.n_linear_layers());
        s.set_layer(
            LayerId::new(0, LayerKind::Q),
            LinearPrecision::uniform(Precision::Fp8),
        );
        s.apply(&mut model);
        assert_eq!(model.scheme(), s.assignments());
    }

    #[test]
    fn grid_rendering_shows_rows_and_columns() {
        let cfg = ModelConfig::tiny_test();
        let s = Scheme::uniform(Precision::Fp4, cfg.n_linear_layers());
        let grid = s.render_grid(&cfg);
        assert!(grid.contains("Down"));
        assert!(grid.contains("L0"));
        assert!(grid.contains("L1"));
        assert_eq!(grid.matches('4').count(), 14);
    }

    #[test]
    fn serde_round_trip() {
        let s = Scheme::uniform(Precision::Fp4, 7);
        let json = serde_json::to_string(&s).unwrap();
        let back: Scheme = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
