//! Per-layer statistics derived from a recorded training step
//! (SNIP Step 1, paper Fig. 6).
//!
//! Besides the raw Frobenius norms, this module pre-computes the
//! quantization-error norms `‖δX‖`, `‖δW‖`, `‖δ∇Y‖` for every candidate
//! precision, which is everything the divergence analysis (§4.2–§4.3)
//! needs — after this step the model tensors can be dropped.

use serde::{Deserialize, Serialize};
use snip_nn::record::StepRecord;
use snip_nn::{LayerId, ModelConfig};
use snip_quant::{Precision, TensorRole};

/// Quantization-error norms of one tensor under each candidate precision.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ErrorByPrecision {
    /// Error under FP4 (E2M1).
    pub fp4: f64,
    /// Error under FP8 (E4M3).
    pub fp8: f64,
    /// Error under BF16 (usually negligible).
    pub bf16: f64,
}

impl ErrorByPrecision {
    /// Error norm for a given precision.
    pub fn get(&self, p: Precision) -> f64 {
        match p {
            Precision::Fp4 => self.fp4,
            Precision::Fp8 => self.fp8,
            Precision::Bf16 => self.bf16,
        }
    }
}

/// Statistics of one quantizable linear layer from one recorded step.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LayerStats {
    /// Tokens in the recorded batch (`M` of the activations).
    pub tokens: usize,
    /// Layer output features (`N`).
    pub out_features: usize,
    /// Layer input features (`K`).
    pub in_features: usize,
    /// `‖X‖_F` — input activations.
    pub x_norm: f64,
    /// `‖W‖_F` — weights.
    pub w_norm: f64,
    /// `‖Y‖_F` — forward output.
    pub y_norm: f64,
    /// `‖∇Y‖_F` — output gradient.
    pub dy_norm: f64,
    /// `‖∇X‖_F` — input gradient (`‖∇_{X_l} L‖`, used by loss divergence).
    pub dx_norm: f64,
    /// `‖∇W‖_F` — weight gradient (`‖∇_{W_l} L‖`).
    pub dw_norm: f64,
    /// Quantization error of the input activations per candidate precision.
    pub x_err: ErrorByPrecision,
    /// Quantization error of the weights per candidate precision.
    pub w_err: ErrorByPrecision,
    /// Quantization error of the output gradients per candidate precision.
    pub dy_err: ErrorByPrecision,
}

/// Statistics for every layer of a recorded step.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StepStats {
    /// Training loss of the recorded (high-precision) step.
    pub loss: f64,
    /// Tokens in the recorded batch.
    pub ntokens: usize,
    /// Per-layer stats, indexed by [`LayerId::linear_index`].
    pub layers: Vec<LayerStats>,
}

impl StepStats {
    /// Derives statistics from a recorded step.
    ///
    /// `quant_group` is the scale-group length used when measuring
    /// quantization errors (pass `cfg.quant_group`).
    pub fn from_record(record: &StepRecord, cfg: &ModelConfig) -> Self {
        let nb = cfg.quant_group;
        let mut layers = Vec::with_capacity(record.linears.len());
        for lr in &record.linears {
            let (out_features, in_features) = lr.w.shape();
            let err = |role: TensorRole, t: &snip_tensor::Tensor| -> ErrorByPrecision {
                ErrorByPrecision {
                    fp4: Precision::Fp4.quantizer_with_group(role, nb).error_norm(t),
                    fp8: Precision::Fp8.quantizer_with_group(role, nb).error_norm(t),
                    bf16: Precision::Bf16.quantizer_with_group(role, nb).error_norm(t),
                }
            };
            layers.push(LayerStats {
                tokens: lr.x.rows(),
                out_features,
                in_features,
                x_norm: lr.x_norm(),
                w_norm: lr.w_norm(),
                y_norm: lr.y_norm,
                dy_norm: lr.dy_norm(),
                dx_norm: lr.dx_norm,
                dw_norm: lr.dw_norm(),
                x_err: err(TensorRole::Input, &lr.x),
                w_err: err(TensorRole::Weight, &lr.w),
                dy_err: err(TensorRole::OutputGrad, &lr.dy),
            });
        }
        StepStats {
            loss: record.loss,
            ntokens: record.ntokens,
            layers,
        }
    }

    /// Stats for one layer.
    pub fn layer(&self, id: LayerId) -> &LayerStats {
        &self.layers[id.linear_index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snip_nn::{
        batch::Batch,
        model::{Model, StepOptions},
    };
    use snip_tensor::rng::Rng;

    fn collect() -> (StepStats, ModelConfig) {
        let cfg = ModelConfig::tiny_test();
        let mut model = Model::new(cfg.clone(), 11).unwrap();
        let mut rng = Rng::seed_from(12);
        let batch = Batch::from_sequences(
            &[
                vec![1, 5, 2, 8, 3, 9, 4, 10, 6],
                vec![2, 6, 3, 9, 4, 10, 5, 11, 7],
            ],
            8,
        );
        model.zero_grads();
        let out = model.step(&batch, &mut rng, &StepOptions::record());
        (StepStats::from_record(&out.record.unwrap(), &cfg), cfg)
    }

    #[test]
    fn stats_cover_all_layers_with_positive_norms() {
        let (stats, cfg) = collect();
        assert_eq!(stats.layers.len(), cfg.n_linear_layers());
        assert!(stats.loss > 0.0);
        for (i, l) in stats.layers.iter().enumerate() {
            assert!(l.x_norm > 0.0, "layer {i} x_norm");
            assert!(l.w_norm > 0.0, "layer {i} w_norm");
            assert!(l.dy_norm > 0.0, "layer {i} dy_norm");
            assert!(l.dw_norm > 0.0, "layer {i} dw_norm");
        }
    }

    #[test]
    fn error_ordering_fp4_gt_fp8_gt_bf16() {
        let (stats, _) = collect();
        for (i, l) in stats.layers.iter().enumerate() {
            assert!(
                l.x_err.fp4 > l.x_err.fp8 && l.x_err.fp8 > l.x_err.bf16,
                "layer {i} x errors: {:?}",
                l.x_err
            );
            assert!(l.w_err.fp4 > l.w_err.fp8, "layer {i} w errors");
        }
    }

    #[test]
    fn dims_match_layer_kinds() {
        let (stats, cfg) = collect();
        use snip_nn::LayerKind;
        let gate = stats.layer(LayerId::new(0, LayerKind::Gate));
        assert_eq!(gate.out_features, cfg.ffn_hidden);
        assert_eq!(gate.in_features, cfg.hidden);
        let down = stats.layer(LayerId::new(1, LayerKind::Down));
        assert_eq!(down.out_features, cfg.hidden);
        assert_eq!(down.in_features, cfg.ffn_hidden);
        assert_eq!(gate.tokens, 16);
    }

    #[test]
    fn error_by_precision_get() {
        let e = ErrorByPrecision {
            fp4: 3.0,
            fp8: 2.0,
            bf16: 1.0,
        };
        assert_eq!(e.get(Precision::Fp4), 3.0);
        assert_eq!(e.get(Precision::Fp8), 2.0);
        assert_eq!(e.get(Precision::Bf16), 1.0);
    }
}
