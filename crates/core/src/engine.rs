//! The periodic SNIP workflow engine (paper Fig. 6 / §3).
//!
//! Steps 1–3 (statistics + probes) must run where the model lives — in the
//! paper, on the GPUs; here, on the training thread. Steps 4–5 (divergence
//! analysis + ILP) are "offloaded to the CPU, allowing the normal training
//! process to continue seamlessly": [`SnipEngine`] runs them on a worker
//! thread connected by channels, and the new scheme is applied (Step 6)
//! whenever it becomes ready. A synchronous path is provided for
//! deterministic tests and one-shot use.

use crate::divergence::analyze;
use crate::options::{FlopModel, OptionSet};
use crate::policy::{decide_scheme, PolicyConfig};
use crate::probe::{measure, SnipMeasurement};
use crate::scheme::Scheme;
use serde::{Deserialize, Serialize};
use snip_nn::{Batch, Model, ModelConfig};
use snip_optim::AdamW;
use snip_tensor::rng::Rng;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::thread::JoinHandle;

/// Engine configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SnipConfig {
    /// ILP policy (efficiency target, time limit, pipeline stages).
    pub policy: PolicyConfig,
    /// Candidate precision options per layer.
    pub options: OptionSet,
    /// Probe noise norm `ε` (Steps 2–3).
    pub probe_epsilon: f64,
    /// Steps between scheme regenerations (the paper recommends ~100k steps
    /// at full scale; scaled-down runs use far fewer).
    pub update_period: u64,
}

impl Default for SnipConfig {
    fn default() -> Self {
        SnipConfig {
            policy: PolicyConfig::default(),
            options: OptionSet::default(),
            probe_epsilon: 1e-2,
            update_period: 100,
        }
    }
}

struct Job {
    measurement: SnipMeasurement,
    name: String,
}

/// Asynchronous Step 4–5 worker plus the synchronous fast path.
#[derive(Debug)]
pub struct SnipEngine {
    cfg: SnipConfig,
    model_cfg: ModelConfig,
    job_tx: Option<Sender<Job>>,
    result_rx: Receiver<Result<Scheme, String>>,
    worker: Option<JoinHandle<()>>,
}

impl SnipEngine {
    /// Creates the engine and spawns its analysis worker thread.
    pub fn new(cfg: SnipConfig, model_cfg: ModelConfig) -> Self {
        let (job_tx, job_rx) = channel::<Job>();
        let (result_tx, result_rx) = channel::<Result<Scheme, String>>();
        let worker_cfg = cfg.clone();
        let worker_model_cfg = model_cfg.clone();
        let worker = std::thread::spawn(move || {
            let flops = FlopModel::new(&worker_model_cfg);
            for job in job_rx.iter() {
                let analysis = analyze(
                    &job.measurement,
                    &worker_model_cfg,
                    &worker_cfg.options,
                    &flops,
                );
                let result = decide_scheme(
                    &analysis,
                    &worker_cfg.options,
                    &worker_model_cfg,
                    &worker_cfg.policy,
                    job.name,
                )
                .map_err(|e| e.to_string());
                if result_tx.send(result).is_err() {
                    break;
                }
            }
        });
        SnipEngine {
            cfg,
            model_cfg,
            job_tx: Some(job_tx),
            result_rx,
            worker: Some(worker),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &SnipConfig {
        &self.cfg
    }

    /// Whether a scheme regeneration is due at `step`.
    pub fn is_update_due(&self, step: u64) -> bool {
        self.cfg.update_period > 0 && step > 0 && step.is_multiple_of(self.cfg.update_period)
    }

    /// Runs Steps 1–5 synchronously and returns the new scheme.
    ///
    /// # Errors
    ///
    /// Returns the solver error message if the ILP is infeasible.
    pub fn generate_scheme_sync(
        &self,
        model: &mut Model,
        optimizer: &AdamW,
        batch: &Batch,
        rng: &mut Rng,
        name: impl Into<String>,
    ) -> Result<Scheme, String> {
        let measurement = measure(model, optimizer, batch, rng, self.cfg.probe_epsilon);
        self.analyze_and_solve(&measurement, name)
    }

    /// Runs only Steps 4–5 on an existing measurement (synchronously).
    ///
    /// # Errors
    ///
    /// Returns the solver error message if the ILP is infeasible.
    pub fn analyze_and_solve(
        &self,
        measurement: &SnipMeasurement,
        name: impl Into<String>,
    ) -> Result<Scheme, String> {
        let flops = FlopModel::new(&self.model_cfg);
        let analysis = analyze(measurement, &self.model_cfg, &self.cfg.options, &flops);
        decide_scheme(
            &analysis,
            &self.cfg.options,
            &self.model_cfg,
            &self.cfg.policy,
            name,
        )
        .map_err(|e| e.to_string())
    }

    /// Runs Steps 1–3 on the training thread and queues Steps 4–5 on the
    /// worker. Training can continue; poll [`SnipEngine::try_collect`].
    pub fn submit(
        &self,
        model: &mut Model,
        optimizer: &AdamW,
        batch: &Batch,
        rng: &mut Rng,
        name: impl Into<String>,
    ) {
        let measurement = measure(model, optimizer, batch, rng, self.cfg.probe_epsilon);
        let job = Job {
            measurement,
            name: name.into(),
        };
        if let Some(tx) = &self.job_tx {
            let _ = tx.send(job);
        }
    }

    /// Non-blocking poll for a finished scheme (Step 6 readiness).
    pub fn try_collect(&self) -> Option<Result<Scheme, String>> {
        match self.result_rx.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocks until the next queued scheme is ready.
    pub fn collect_blocking(&self) -> Option<Result<Scheme, String>> {
        self.result_rx.recv().ok()
    }
}

impl Drop for SnipEngine {
    fn drop(&mut self) {
        // Closing the job channel ends the worker loop.
        self.job_tx.take();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snip_nn::model::StepOptions;
    use snip_optim::AdamWConfig;
    use snip_quant::{LinearPrecision, Precision};

    fn setup() -> (Model, AdamW, Batch, Rng, ModelConfig) {
        let cfg = ModelConfig::tiny_test();
        let mut model = Model::new(cfg.clone(), 51).unwrap();
        let mut rng = Rng::seed_from(52);
        let batch = Batch::from_sequences(
            &[
                vec![1, 2, 3, 4, 5, 6, 7, 8, 9],
                vec![8, 6, 4, 2, 1, 3, 5, 7, 9],
            ],
            8,
        );
        let mut opt = AdamW::new(AdamWConfig::default());
        for _ in 0..2 {
            model.zero_grads();
            let _ = model.step(&batch, &mut rng, &StepOptions::train());
            opt.update(&mut model);
        }
        (model, opt, batch, rng, cfg)
    }

    fn engine(target: f64, cfg: &ModelConfig) -> SnipEngine {
        SnipEngine::new(
            SnipConfig {
                policy: PolicyConfig {
                    target_fp4: target,
                    ..Default::default()
                },
                ..Default::default()
            },
            cfg.clone(),
        )
    }

    #[test]
    fn sync_scheme_meets_budget() {
        let (mut model, opt, batch, mut rng, cfg) = setup();
        let eng = engine(0.5, &cfg);
        let scheme = eng
            .generate_scheme_sync(&mut model, &opt, &batch, &mut rng, "snip@50")
            .unwrap();
        let flops = FlopModel::new(&cfg);
        assert!(scheme.fp4_fraction(&flops) + 1e-9 >= 0.5);
        assert!(scheme.fp4_layer_count() > 0);
        assert!(scheme.fp4_layer_count() < cfg.n_linear_layers());
    }

    #[test]
    fn async_round_trip_matches_sync() {
        let (mut model, opt, batch, rng, cfg) = setup();
        let eng = engine(0.5, &cfg);
        let sync = eng
            .generate_scheme_sync(&mut model, &opt, &batch, &mut rng.clone(), "s")
            .unwrap();
        eng.submit(&mut model, &opt, &batch, &mut rng.clone(), "s");
        let async_scheme = eng.collect_blocking().unwrap().unwrap();
        assert_eq!(sync.assignments(), async_scheme.assignments());
    }

    #[test]
    fn extreme_budgets_are_uniform() {
        let (mut model, opt, batch, mut rng, cfg) = setup();
        let flops = FlopModel::new(&cfg);
        let e0 = engine(0.0, &cfg)
            .generate_scheme_sync(&mut model, &opt, &batch, &mut rng, "e0")
            .unwrap();
        assert_eq!(e0.fp4_layer_count(), 0);
        assert_eq!(e0.fp4_fraction(&flops), 0.0);
        let e1 = engine(1.0, &cfg)
            .generate_scheme_sync(&mut model, &opt, &batch, &mut rng, "e1")
            .unwrap();
        assert_eq!(e1.fp4_layer_count(), cfg.n_linear_layers());
        assert!(e1
            .assignments()
            .iter()
            .all(|&p| p == LinearPrecision::uniform(Precision::Fp4)));
    }

    #[test]
    fn update_schedule() {
        let (.., cfg) = setup();
        let eng = engine(0.5, &cfg);
        assert!(!eng.is_update_due(0));
        assert!(eng.is_update_due(eng.config().update_period));
        assert!(!eng.is_update_due(eng.config().update_period + 1));
    }

    #[test]
    fn try_collect_is_non_blocking() {
        let (.., cfg) = setup();
        let eng = engine(0.5, &cfg);
        assert!(eng.try_collect().is_none());
    }
}
