//! Row-wise statistics (paper §6.3, "Memory Overhead of SNIP").
//!
//! The paper: *"To improve sensitivity estimation, we replace global
//! Frobenius norms with a row-wise formulation, which stores only M or N
//! additional values for an M×N tensor. This overhead is negligible relative
//! to tensor size, and in practice the GPU memory overhead of SNIP is under
//! 1%."*
//!
//! Two things are implemented here:
//!
//! 1. **The storage**: [`RowNorms`] (per-row ℓ2 norms, from which the global
//!    Frobenius norm is recovered exactly) and [`RowwiseLayerStats`] (the
//!    full per-layer row-wise statistics set), with value-count accounting
//!    that makes the <1% claim checkable — see [`overhead_ratio`] and the
//!    `memory_overhead` experiment.
//! 2. **The sensitivity refinement**: the weight-gradient error estimate
//!    `δ(dW) ≈ (‖δdY‖·‖X‖ + ‖dY‖·‖δX‖)/√M` pairs two tensors that share
//!    their row (token) index, so the row-wise form
//!    `Σ_r ‖δdY_r‖·‖X_r‖ / √M` applies Cauchy–Schwarz per token instead of
//!    once globally — always at least as tight, and strictly tighter when
//!    error and activation mass sit on different tokens
//!    ([`RowwiseLayerStats::direct_noise`]). Cross-layer terms contract
//!    over *different* index sets, so they keep the paper's global-norm
//!    estimates; only the direct term has a sound row-wise refinement.

use serde::{Deserialize, Serialize};
use snip_nn::record::LinearRecord;
use snip_quant::{LinearPrecision, Precision, TensorRole};
use snip_tensor::Tensor;

/// Per-row ℓ2 norms of a tensor — the §6.3 storage unit (M values for an
/// M×N tensor).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RowNorms {
    norms: Vec<f64>,
}

impl RowNorms {
    /// Computes per-row norms of `t`.
    pub fn from_tensor(t: &Tensor) -> Self {
        let (rows, _) = t.shape();
        RowNorms {
            norms: (0..rows)
                .map(|r| {
                    t.row(r)
                        .iter()
                        .map(|&v| (v as f64).powi(2))
                        .sum::<f64>()
                        .sqrt()
                })
                .collect(),
        }
    }

    /// Wraps precomputed norms.
    pub fn from_vec(norms: Vec<f64>) -> Self {
        RowNorms { norms }
    }

    /// The stored values.
    pub fn as_slice(&self) -> &[f64] {
        &self.norms
    }

    /// Number of stored values (M or N in the paper's phrasing).
    pub fn len(&self) -> usize {
        self.norms.len()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.norms.is_empty()
    }

    /// The global Frobenius norm, recovered exactly: `√(Σ_r ‖row_r‖²)`.
    pub fn global(&self) -> f64 {
        self.norms.iter().map(|&n| n * n).sum::<f64>().sqrt()
    }

    /// Row-paired product `Σ_r a_r·b_r`. By Cauchy–Schwarz this never
    /// exceeds `a.global()·b.global()`, and it is the tight first-order
    /// bound when the two tensors share their row index.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn paired_product(&self, other: &RowNorms) -> f64 {
        assert_eq!(
            self.norms.len(),
            other.norms.len(),
            "paired tensors must share their row count"
        );
        self.norms
            .iter()
            .zip(&other.norms)
            .map(|(&a, &b)| a * b)
            .sum()
    }
}

/// Row-wise quantization-error norms per candidate precision (mirrors
/// [`crate::stats::ErrorByPrecision`] at row granularity).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ErrorRowsByPrecision {
    /// Per-row error under FP4 (E2M1).
    pub fp4: RowNorms,
    /// Per-row error under FP8 (E4M3).
    pub fp8: RowNorms,
}

impl ErrorRowsByPrecision {
    /// Row norms for a precision. BF16 error rows are not stored (they are
    /// negligible, §6.3 stores only what the analysis consumes); asking for
    /// them is a caller bug.
    ///
    /// # Panics
    ///
    /// Panics for [`Precision::Bf16`].
    pub fn get(&self, p: Precision) -> &RowNorms {
        match p {
            Precision::Fp4 => &self.fp4,
            Precision::Fp8 => &self.fp8,
            Precision::Bf16 => panic!("BF16 error rows are not collected"),
        }
    }
}

/// Row-wise statistics of one linear layer (the §6.3 replacement for the
/// global Frobenius norms).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RowwiseLayerStats {
    /// `‖X_r‖` per token row (M values).
    pub x: RowNorms,
    /// `‖W_r‖` per output row (N values).
    pub w: RowNorms,
    /// `‖∇Y_r‖` per token row (M values).
    pub dy: RowNorms,
    /// Per-row quantization error of X.
    pub x_err: ErrorRowsByPrecision,
    /// Per-row quantization error of W.
    pub w_err: ErrorRowsByPrecision,
    /// Per-row quantization error of ∇Y.
    pub dy_err: ErrorRowsByPrecision,
}

impl RowwiseLayerStats {
    /// Collects row-wise statistics from a recorded layer. `nb` is the
    /// scale-group length (pass `cfg.quant_group`).
    pub fn from_record(lr: &LinearRecord, nb: usize) -> Self {
        let err_rows = |role: TensorRole, t: &Tensor| -> ErrorRowsByPrecision {
            let mut rng = snip_tensor::rng::Rng::seed_from(0); // Nearest: unused
            let mut err_of = |p: Precision| {
                let q = p
                    .quantizer_with_group(role, nb)
                    .with_rounding(snip_quant::Rounding::Nearest)
                    .fake_quantize(t, &mut rng);
                RowNorms::from_tensor(&q.sub(t))
            };
            ErrorRowsByPrecision {
                fp4: err_of(Precision::Fp4),
                fp8: err_of(Precision::Fp8),
            }
        };
        RowwiseLayerStats {
            x: RowNorms::from_tensor(&lr.x),
            w: RowNorms::from_tensor(&lr.w),
            dy: RowNorms::from_tensor(&lr.dy),
            x_err: err_rows(TensorRole::Input, &lr.x),
            w_err: err_rows(TensorRole::Weight, &lr.w),
            dy_err: err_rows(TensorRole::OutputGrad, &lr.dy),
        }
    }

    /// Total stored values for this layer (the §6.3 memory overhead).
    pub fn stored_values(&self) -> usize {
        self.x.len()
            + self.w.len()
            + self.dy.len()
            + self.x_err.fp4.len()
            + self.x_err.fp8.len()
            + self.w_err.fp4.len()
            + self.w_err.fp8.len()
            + self.dy_err.fp4.len()
            + self.dy_err.fp8.len()
    }

    /// Row-wise refinement of the direct weight-gradient error
    /// (`dW = dYᵀ·X`): `(Σ_r ‖δdY_r‖·‖X_r‖ + Σ_r ‖dY_r‖·‖δX_r‖)/√M`.
    /// Never exceeds the global estimate
    /// [`injected_noise`](crate::divergence::injected_noise)`.direct`.
    pub fn direct_noise(&self, option: LinearPrecision) -> f64 {
        let m = (self.x.len() as f64).sqrt();
        (self.dy_err.get(option.grad).paired_product(&self.x)
            + self.dy.paired_product(self.x_err.get(option.input)))
            / m
    }
}

/// Stored-value count for a layer with `m` token rows and `n` output rows:
/// three data-norm vectors (X, ∇Y over tokens; W over outputs) plus two
/// error precisions each — `6·m + 3·n` values.
pub fn stored_value_count(m: usize, n: usize) -> usize {
    6 * m + 3 * n
}

/// The §6.3 overhead ratio: stored statistic values relative to the
/// elements of the tensors they describe (X: m×k, W: n×k, ∇Y: m×n).
pub fn overhead_ratio(m: usize, n: usize, k: usize) -> f64 {
    let stored = stored_value_count(m, n) as f64;
    let elements = (m * k + n * k + m * n) as f64;
    stored / elements
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::divergence::injected_noise;
    use snip_nn::{
        batch::Batch,
        model::{Model, StepOptions},
        ModelConfig,
    };
    use snip_tensor::rng::Rng;

    fn record() -> (snip_nn::record::StepRecord, ModelConfig) {
        let cfg = ModelConfig::tiny_test();
        let mut model = Model::new(cfg.clone(), 81).unwrap();
        let mut rng = Rng::seed_from(82);
        let batch = Batch::from_sequences(
            &[
                vec![1, 3, 5, 7, 9, 11, 13, 15, 1],
                vec![2, 4, 6, 8, 10, 12, 14, 16, 2],
            ],
            8,
        );
        model.zero_grads();
        let out = model.step(&batch, &mut rng, &StepOptions::record());
        (out.record.unwrap(), cfg)
    }

    #[test]
    fn row_norms_recover_global_frobenius() {
        let mut rng = Rng::seed_from(1);
        let t = Tensor::randn(7, 13, 2.0, &mut rng);
        let rn = RowNorms::from_tensor(&t);
        assert_eq!(rn.len(), 7);
        assert!((rn.global() - t.frobenius_norm()).abs() < 1e-9);
    }

    #[test]
    fn paired_product_obeys_cauchy_schwarz() {
        let mut rng = Rng::seed_from(2);
        for _ in 0..20 {
            let a = RowNorms::from_tensor(&Tensor::randn(5, 8, 1.0, &mut rng));
            let b = RowNorms::from_tensor(&Tensor::randn(5, 11, 3.0, &mut rng));
            assert!(a.paired_product(&b) <= a.global() * b.global() + 1e-12);
        }
    }

    #[test]
    fn paired_product_tight_when_mass_is_aligned() {
        // Mass on the same single row: pairing equals the global product.
        let a = RowNorms::from_vec(vec![0.0, 3.0, 0.0]);
        let b = RowNorms::from_vec(vec![0.0, 4.0, 0.0]);
        assert_eq!(a.paired_product(&b), 12.0);
        assert_eq!(a.global() * b.global(), 12.0);
        // Mass on different rows: pairing sees zero, the global bound 12.
        let c = RowNorms::from_vec(vec![4.0, 0.0, 0.0]);
        assert_eq!(a.paired_product(&c), 0.0);
        assert_eq!(a.global() * c.global(), 12.0);
    }

    #[test]
    #[should_panic(expected = "share their row count")]
    fn paired_product_length_mismatch_panics() {
        let a = RowNorms::from_vec(vec![1.0]);
        let b = RowNorms::from_vec(vec![1.0, 2.0]);
        let _ = a.paired_product(&b);
    }

    #[test]
    fn rowwise_direct_noise_never_exceeds_global() {
        let (rec, cfg) = record();
        let stats = crate::stats::StepStats::from_record(&rec, &cfg);
        for (i, lr) in rec.linears.iter().enumerate() {
            let rw = RowwiseLayerStats::from_record(lr, cfg.quant_group);
            for p in [Precision::Fp4, Precision::Fp8] {
                let opt = LinearPrecision::uniform(p);
                let rowwise = rw.direct_noise(opt);
                let global = injected_noise(&stats.layers[i], opt).direct;
                assert!(
                    rowwise <= global + 1e-12,
                    "layer {i} {p}: rowwise {rowwise} > global {global}"
                );
                assert!(rowwise > 0.0, "layer {i} {p}: zero rowwise estimate");
            }
        }
    }

    #[test]
    fn rowwise_error_rows_aggregate_to_global_error() {
        let (rec, cfg) = record();
        let stats = crate::stats::StepStats::from_record(&rec, &cfg);
        let lr = &rec.linears[3];
        let rw = RowwiseLayerStats::from_record(lr, cfg.quant_group);
        assert!((rw.x_err.fp4.global() - stats.layers[3].x_err.fp4).abs() < 1e-9);
        assert!((rw.dy_err.fp8.global() - stats.layers[3].dy_err.fp8).abs() < 1e-9);
        assert!((rw.w.global() - stats.layers[3].w_norm).abs() < 1e-9);
    }

    #[test]
    fn stored_values_match_static_formula() {
        let (rec, cfg) = record();
        let lr = &rec.linears[0];
        let rw = RowwiseLayerStats::from_record(lr, cfg.quant_group);
        let (m, _) = lr.x.shape();
        let (n, _) = lr.w.shape();
        assert_eq!(rw.stored_values(), stored_value_count(m, n));
    }

    #[test]
    fn paper_scale_overhead_is_under_one_percent() {
        // A paper-scale linear: 16k tokens (batch 4 × seq 4096), 4096×4096
        // weights. Stored statistics vs described tensor elements.
        let ratio = overhead_ratio(16_384, 4096, 4096);
        assert!(ratio < 0.01, "overhead {ratio} ≥ 1%");
        // Even the worst linear (ffn down: k = 11008) stays far under.
        assert!(overhead_ratio(16_384, 4096, 11_008) < 0.01);
    }

    #[test]
    fn sim_scale_overhead_is_larger_but_finite() {
        // Our scaled-down models have tiny K, so the *relative* overhead is
        // bigger — worth documenting, not asserting small.
        let cfg = ModelConfig::tiny_test();
        let r = overhead_ratio(16, cfg.hidden, cfg.hidden);
        assert!(r > 0.01 && r < 1.0, "ratio {r}");
    }

    #[test]
    #[should_panic(expected = "BF16 error rows")]
    fn bf16_error_rows_not_collected() {
        let e = ErrorRowsByPrecision::default();
        let _ = e.get(Precision::Bf16);
    }
}
