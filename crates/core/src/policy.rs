//! Step 5: deciding the optimal layer-wise quantization scheme via ILP
//! (paper §5.2–§5.3).

use crate::divergence::Analysis;
use crate::options::{FlopModel, OptionSet};
use crate::scheme::Scheme;
use serde::{Deserialize, Serialize};
use snip_ilp::{solve, solve_grouped, Choice, McKnapsack, SolveError, SolveOptions};
use snip_nn::ModelConfig;
use std::time::Duration;

/// How per-stage targets are derived when pipeline balancing is on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineBalance {
    /// Each stage contributes in proportion to its FLOP share (the Eq. 5
    /// behaviour Fig. 12 describes; equals `E_t/K` for equal stages).
    #[default]
    Relative,
    /// Per-stage targets water-filled to equalize stage *times* under the
    /// FP8/FP4 throughput model — our extension; with unequal stages (the
    /// 6/6/6/4 split) relative balance preserves the stage-time imbalance,
    /// time balance shrinks the pipeline bubble
    /// (see `snip_ilp::balanced` and the `ablation_pipeline_balance`
    /// experiment).
    TimeBalanced,
}

/// Policy parameters for one scheme decision.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Efficiency target `E_t` ∈ [0, 1]: the fraction of linear-layer FLOPs
    /// that must run in FP4.
    pub target_fp4: f64,
    /// ILP wall-clock budget in milliseconds (paper uses 30 s).
    pub time_limit_ms: u64,
    /// When set, decompose into this many contiguous pipeline stages and
    /// balance efficiency across them (paper §5.3).
    pub pipeline_stages: Option<usize>,
    /// Target derivation for the pipeline constraint (ignored when
    /// `pipeline_stages` is `None`).
    #[serde(default)]
    pub pipeline_balance: PipelineBalance,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            target_fp4: 0.5,
            time_limit_ms: 30_000,
            pipeline_stages: None,
            pipeline_balance: PipelineBalance::default(),
        }
    }
}

/// Builds the ILP instance for the analysis and solves it, returning the
/// resulting per-layer scheme.
///
/// # Errors
///
/// Propagates [`SolveError`] (infeasible target or malformed inputs).
pub fn decide_scheme(
    analysis: &Analysis,
    options: &OptionSet,
    cfg: &ModelConfig,
    policy: &PolicyConfig,
    name: impl Into<String>,
) -> Result<Scheme, SolveError> {
    let n_layers = cfg.n_linear_layers();
    let groups: Vec<Vec<Choice>> = (0..n_layers)
        .map(|i| {
            (0..options.len())
                .map(|j| Choice::new(analysis.quality[i][j], analysis.efficiency[i][j]))
                .collect()
        })
        .collect();
    let problem = McKnapsack::new(groups, policy.target_fp4);
    let opts = SolveOptions {
        time_limit: Duration::from_millis(policy.time_limit_ms),
    };
    let solution = match policy.pipeline_stages {
        None => solve(&problem, &opts)?,
        Some(k) => {
            // §5.3: one efficiency constraint per pipeline stage. Stages are
            // whole transformer blocks (the paper's 22-block model splits
            // 6/6/6/4 over 4 stages), so we assign layers to stages through
            // their block index rather than chunking flat layer indices. We
            // balance *relative* to each stage's FLOP share (the behaviour
            // Fig. 12 describes: a short final stage contributes
            // proportionally), which equals the paper's `E_t/K` when stages
            // carry equal FLOPs.
            let blocks_per_stage = cfg.n_layers.div_ceil(k);
            let stage_of: Vec<usize> = (0..n_layers)
                .map(|i| {
                    (snip_nn::LayerId::from_linear_index(i).block / blocks_per_stage).min(k - 1)
                })
                .collect();
            let flops = FlopModel::new(cfg);
            let mut stage_flops = vec![0.0f64; k];
            for (i, &s) in stage_of.iter().enumerate() {
                stage_flops[s] += flops.fraction(i);
            }
            let targets: Vec<f64> = match policy.pipeline_balance {
                PipelineBalance::Relative => {
                    stage_flops.iter().map(|&f| policy.target_fp4 * f).collect()
                }
                PipelineBalance::TimeBalanced => {
                    snip_ilp::time_balanced_targets(&stage_flops, policy.target_fp4)?
                }
            };
            solve_grouped(&problem, &stage_of, &targets, &opts)?
        }
    };
    let assignments = solution
        .picks
        .iter()
        .map(|&j| options.options()[j])
        .collect();
    Ok(Scheme::new(name, assignments))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snip_quant::{LinearPrecision, Precision};

    /// Builds a synthetic analysis where the FP4 cost of layer `i` is
    /// `costs[i]` and every layer carries equal FLOPs.
    fn synthetic_analysis(costs: &[f64]) -> (Analysis, OptionSet) {
        let n = costs.len();
        let e_unit = 1.0 / n as f64;
        let analysis = Analysis {
            loss_div: costs.iter().map(|&c| vec![0.0, c / 2.0]).collect(),
            weight_div: costs.iter().map(|&c| vec![0.0, c / 2.0]).collect(),
            quality: costs.iter().map(|&c| vec![1e-6, c]).collect(),
            efficiency: (0..n).map(|_| vec![0.0, e_unit]).collect(),
        };
        (analysis, OptionSet::fp8_fp4())
    }

    fn tiny_cfg() -> ModelConfig {
        ModelConfig::tiny_test() // 2 blocks → 14 linears
    }

    #[test]
    fn half_budget_picks_cheapest_half() {
        let cfg = tiny_cfg();
        let n = cfg.n_linear_layers();
        // Layers 0..7 cheap, 7..14 expensive.
        let costs: Vec<f64> = (0..n).map(|i| if i < 7 { 0.01 } else { 1.0 }).collect();
        let (analysis, options) = synthetic_analysis(&costs);
        let policy = PolicyConfig {
            target_fp4: 0.5,
            ..Default::default()
        };
        let scheme = decide_scheme(&analysis, &options, &cfg, &policy, "test").unwrap();
        for i in 0..n {
            let expect = if i < 7 {
                Precision::Fp4
            } else {
                Precision::Fp8
            };
            assert_eq!(
                scheme.assignments()[i],
                LinearPrecision::uniform(expect),
                "layer {i}"
            );
        }
    }

    #[test]
    fn zero_budget_is_all_fp8_full_budget_all_fp4() {
        let cfg = tiny_cfg();
        let n = cfg.n_linear_layers();
        let (analysis, options) = synthetic_analysis(&vec![1.0; n]);
        let s0 = decide_scheme(
            &analysis,
            &options,
            &cfg,
            &PolicyConfig {
                target_fp4: 0.0,
                ..Default::default()
            },
            "e0",
        )
        .unwrap();
        assert_eq!(s0.fp4_layer_count(), 0);
        let s1 = decide_scheme(
            &analysis,
            &options,
            &cfg,
            &PolicyConfig {
                target_fp4: 1.0,
                ..Default::default()
            },
            "e1",
        )
        .unwrap();
        assert_eq!(s1.fp4_layer_count(), n);
    }

    #[test]
    fn pipeline_constraint_spreads_fp4_across_stages() {
        let cfg = tiny_cfg();
        let n = cfg.n_linear_layers();
        // All cheap layers in the first half — the global optimum would put
        // all FP4 there, but per-stage balancing must move some to stage 2.
        let costs: Vec<f64> = (0..n).map(|i| if i < 7 { 0.01 } else { 1.0 }).collect();
        let (analysis, options) = synthetic_analysis(&costs);
        let policy = PolicyConfig {
            target_fp4: 0.5,
            pipeline_stages: Some(2),
            ..Default::default()
        };
        let scheme = decide_scheme(&analysis, &options, &cfg, &policy, "pp").unwrap();
        let first_half = scheme.assignments()[..7]
            .iter()
            .filter(|&&p| p == LinearPrecision::uniform(Precision::Fp4))
            .count();
        let second_half = scheme.assignments()[7..]
            .iter()
            .filter(|&&p| p == LinearPrecision::uniform(Precision::Fp4))
            .count();
        assert!(
            second_half >= 3,
            "stage 2 got only {second_half} FP4 layers"
        );
        assert!(first_half >= 3);
    }

    #[test]
    fn time_balanced_mode_shifts_fp4_toward_heavy_stages() {
        let cfg = tiny_cfg();
        let n = cfg.n_linear_layers();
        let (analysis, options) = synthetic_analysis(&vec![1.0; n]);
        // Two stages of the 2-block model carry equal FLOPs here, so the
        // two modes agree; this pins that the TimeBalanced path is wired
        // and budget-compliant end to end.
        for balance in [PipelineBalance::Relative, PipelineBalance::TimeBalanced] {
            let policy = PolicyConfig {
                target_fp4: 0.5,
                pipeline_stages: Some(2),
                pipeline_balance: balance,
                ..Default::default()
            };
            let scheme = decide_scheme(&analysis, &options, &cfg, &policy, "tb").unwrap();
            let flops = FlopModel::new(&cfg);
            assert!(
                scheme.fp4_fraction(&flops) + 1e-9 >= 0.5,
                "{balance:?} missed the budget"
            );
        }
    }

    #[test]
    fn infeasible_target_propagates_error() {
        let cfg = tiny_cfg();
        let n = cfg.n_linear_layers();
        let (analysis, options) = synthetic_analysis(&vec![1.0; n]);
        let res = decide_scheme(
            &analysis,
            &options,
            &cfg,
            &PolicyConfig {
                target_fp4: 1.5,
                ..Default::default()
            },
            "bad",
        );
        assert_eq!(res.unwrap_err(), SolveError::Infeasible);
    }
}
