//! Steps 1–3 of the SNIP workflow (paper Fig. 6): collect statistics on a
//! high-precision iteration, then run the two noise-injection probe passes
//! that estimate second-order error propagation (Theorem 4.2).

use crate::stats::StepStats;
use serde::{Deserialize, Serialize};
use snip_nn::inject::{Injection, InjectionSite};
use snip_nn::model::{Model, StepOptions};
use snip_nn::{Batch, LayerId};
use snip_optim::AdamW;
use snip_quant::{LinearPrecision, Precision};
use snip_tensor::rng::Rng;

/// Everything the divergence analysis needs, extracted from one batch.
/// Cheap to send to a worker thread (norms only, no tensors).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SnipMeasurement {
    /// Step-1 statistics (norms + per-precision quantization errors).
    pub stats: StepStats,
    /// Per-layer gradient response to *forward* top noise:
    /// `‖g_l(noise) − g_l‖ / ε` (Step 3).
    pub p_fwd: Vec<f64>,
    /// Per-layer gradient response to *backward* top noise (Step 2).
    pub p_bwd: Vec<f64>,
    /// AdamW update sensitivity `h′(g_l)` per layer (§4.3.2), including the
    /// learning-rate prefactor and dimensional normalization.
    pub h_sens: Vec<f64>,
    /// The `ε` used by the probes.
    pub probe_epsilon: f64,
    /// `|L(noise@fwd) − L|` — a free validation sample of Theorem 4.1.
    pub fwd_loss_delta: f64,
}

/// Runs Steps 1–3 on the given batch. The model's weights are untouched
/// (probes never call the optimizer) and all gradients are zeroed on exit.
///
/// Statistics are collected with the model temporarily forced to its
/// high-precision (BF16) scheme, matching the paper: "we collect statistics
/// during a standard training iteration using high precision".
pub fn measure(
    model: &mut Model,
    optimizer: &AdamW,
    batch: &Batch,
    rng: &mut Rng,
    epsilon: f64,
) -> SnipMeasurement {
    let cfg = model.config().clone();
    let n = cfg.n_linear_layers();
    // Force BF16 for measurement, restore afterwards.
    let saved_scheme = model.scheme();
    model.set_scheme(&vec![LinearPrecision::uniform(Precision::Bf16); n]);

    // Step 1: baseline recorded iteration.
    model.zero_grads();
    let base = model
        .step(batch, rng, &StepOptions::record())
        .record
        .expect("recording requested");

    // Step 2: backward-top noise.
    model.zero_grads();
    let bwd = model
        .step(
            batch,
            rng,
            &StepOptions::probe(Injection {
                site: InjectionSite::BackwardTop,
                epsilon,
                seed: 0x5712_0002,
            }),
        )
        .record
        .expect("recording requested");

    // Step 3: forward-top noise.
    model.zero_grads();
    let fwd_out = model.step(
        batch,
        rng,
        &StepOptions::probe(Injection {
            site: InjectionSite::ForwardTop,
            epsilon,
            seed: 0x5712_0003,
        }),
    );
    let fwd = fwd_out.record.expect("recording requested");

    // Gradient responses per layer (Theorem 4.2 single-sample estimate).
    let p_bwd: Vec<f64> = (0..n)
        .map(|i| base.linears[i].dw.distance(&bwd.linears[i].dw) / epsilon)
        .collect();
    let p_fwd: Vec<f64> = (0..n)
        .map(|i| base.linears[i].dw.distance(&fwd.linears[i].dw) / epsilon)
        .collect();

    // AdamW update sensitivity at the current moments and gradients.
    let h_sens: Vec<f64> = (0..n)
        .map(|i| {
            let id = LayerId::from_linear_index(i);
            optimizer.update_sensitivity(model.param_index_of(id), &base.linears[i].dw)
        })
        .collect();

    let fwd_loss_delta = (fwd.loss - base.loss).abs();
    let stats = StepStats::from_record(&base, &cfg);

    model.zero_grads();
    model.set_scheme(&saved_scheme);

    SnipMeasurement {
        stats,
        p_fwd,
        p_bwd,
        h_sens,
        probe_epsilon: epsilon,
        fwd_loss_delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snip_nn::model::StepOptions as SO;
    use snip_nn::ModelConfig;
    use snip_optim::AdamWConfig;

    fn setup() -> (Model, AdamW, Batch, Rng) {
        let cfg = ModelConfig::tiny_test();
        let mut model = Model::new(cfg, 21).unwrap();
        let mut rng = Rng::seed_from(22);
        let batch = Batch::from_sequences(
            &[
                vec![1, 2, 3, 4, 5, 6, 7, 8, 9],
                vec![4, 8, 12, 16, 3, 7, 11, 15, 2],
            ],
            8,
        );
        // Warm the optimizer so moments exist.
        let mut opt = AdamW::new(AdamWConfig::default());
        model.zero_grads();
        let _ = model.step(&batch, &mut rng, &SO::train());
        opt.update(&mut model);
        (model, opt, batch, rng)
    }

    #[test]
    fn measurement_has_full_coverage() {
        let (mut model, opt, batch, mut rng) = setup();
        let m = measure(&mut model, &opt, &batch, &mut rng, 1e-2);
        let n = model.config().n_linear_layers();
        assert_eq!(m.stats.layers.len(), n);
        assert_eq!(m.p_fwd.len(), n);
        assert_eq!(m.p_bwd.len(), n);
        assert_eq!(m.h_sens.len(), n);
        assert!(m.p_bwd.iter().all(|&p| p.is_finite() && p >= 0.0));
        assert!(m.p_fwd.iter().all(|&p| p.is_finite()));
        assert!(m.h_sens.iter().all(|&h| h > 0.0));
    }

    #[test]
    fn backward_noise_perturbs_gradients() {
        let (mut model, opt, batch, mut rng) = setup();
        let m = measure(&mut model, &opt, &batch, &mut rng, 1e-2);
        // At least the early layers must respond to top-injected noise.
        let responding = m.p_bwd.iter().filter(|&&p| p > 0.0).count();
        assert!(
            responding > m.p_bwd.len() / 2,
            "{responding} responding layers"
        );
    }

    #[test]
    fn model_state_is_restored() {
        let (mut model, opt, batch, mut rng) = setup();
        let scheme_before = model.scheme();
        let loss_before = model.forward_loss(&batch, &mut rng.clone());
        let _ = measure(&mut model, &opt, &batch, &mut rng, 1e-2);
        assert_eq!(model.scheme(), scheme_before, "scheme must be restored");
        assert_eq!(
            model.forward_loss(&batch, &mut rng.clone()),
            loss_before,
            "weights must be untouched"
        );
        assert_eq!(model.grad_norm(), 0.0, "gradients must be zeroed");
    }

    #[test]
    fn probe_responses_scale_roughly_linearly_with_epsilon() {
        // Theorem 4.2: the response ‖Δg‖/ε should be ~constant in ε for
        // small ε (we allow generous slack — single sample, bf16 noise).
        let (mut model, opt, batch, mut rng) = setup();
        let m1 = measure(&mut model, &opt, &batch, &mut rng, 5e-3);
        let m2 = measure(&mut model, &opt, &batch, &mut rng, 2e-2);
        let s1: f64 = m1.p_bwd.iter().sum();
        let s2: f64 = m2.p_bwd.iter().sum();
        assert!(s1 > 0.0 && s2 > 0.0);
        let ratio = s1 / s2;
        assert!(
            (0.2..5.0).contains(&ratio),
            "responses not comparable: {s1} vs {s2}"
        );
    }

    #[test]
    fn forward_loss_delta_is_positive() {
        let (mut model, opt, batch, mut rng) = setup();
        let m = measure(&mut model, &opt, &batch, &mut rng, 1e-1);
        assert!(m.fwd_loss_delta > 0.0);
    }
}
