//! # snip-core
//!
//! The SNIP framework itself — the paper's primary contribution: a
//! fine-grained adaptive mixed-precision policy for subbyte LLM pretraining.
//!
//! The workflow (paper Fig. 6):
//!
//! 1. **Collect statistics** on a high-precision iteration —
//!    [`probe::measure`] + [`stats::StepStats`].
//! 2. **Backward noise probe** and 3. **forward noise probe** estimating
//!    second-order error propagation (Theorem 4.2) — [`probe`].
//! 4. **Analyze divergence**: loss divergence (§4.2) and weight divergence
//!    (§4.3) per layer and precision option — [`divergence::analyze`].
//! 5. **Solve the ILP** (multiple-choice knapsack, §5.2; pipeline-stage
//!    variant §5.3) — [`policy::decide_scheme`] on top of `snip-ilp`.
//! 6. **Apply the scheme** asynchronously — [`engine::SnipEngine`] and
//!    [`trainer::Trainer::train_with_engine`].
//!
//! Baselines from §6.1 (uniform, min-abs/rel-err, E-layer-type, E-layer-id,
//! random) live in [`baselines`].
//!
//! # Example
//!
//! ```
//! use snip_core::{engine::{SnipConfig, SnipEngine}, policy::PolicyConfig, trainer::{Trainer, TrainerConfig}};
//!
//! // Train a tiny model with SNIP updating the precision scheme every 5 steps.
//! let cfg = TrainerConfig::tiny();
//! let mut trainer = Trainer::new(cfg.clone()).unwrap();
//! trainer.train(5); // warm up the optimizer state
//! let engine = SnipEngine::new(
//!     SnipConfig {
//!         policy: PolicyConfig { target_fp4: 0.5, ..Default::default() },
//!         update_period: 5,
//!         ..Default::default()
//!     },
//!     cfg.model.clone(),
//! );
//! let losses = trainer.train_with_engine(10, &engine);
//! assert!(losses.iter().all(|l| l.is_finite()));
//! ```

pub mod baselines;
pub mod divergence;
pub mod engine;
pub mod heuristics;
pub mod options;
pub mod policy;
pub mod probe;
pub mod rowwise;
pub mod scheme;
pub mod stats;
pub mod trainer;

pub use divergence::{analyze, Analysis};
pub use engine::{SnipConfig, SnipEngine};
pub use heuristics::{fisher_scheme, greedy_refinement, greedy_snip_scheme};
pub use options::{FlopModel, OptionSet};
pub use policy::{decide_scheme, PipelineBalance, PolicyConfig};
pub use probe::{measure, SnipMeasurement};
pub use rowwise::{overhead_ratio, RowNorms, RowwiseLayerStats};
pub use scheme::Scheme;
pub use stats::StepStats;
pub use trainer::{Trainer, TrainerConfig};
