//! Per-layer precision option sets and FLOP accounting.
//!
//! Each layer picks one option from a set (paper §5.2: "For each layer i,
//! the options are combinations of FP8 and FP4 formats for inputs, weights,
//! and gradients"). The headline experiments use the two uniform options
//! {all-FP8, all-FP4}; [`OptionSet::mixed`] exposes the full combination
//! space, and new quantization techniques can be added as further options.

use serde::{Deserialize, Serialize};
use snip_nn::{LayerId, ModelConfig};
use snip_quant::{LinearPrecision, Precision};

/// The candidate precision assignments every layer chooses from.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptionSet {
    options: Vec<LinearPrecision>,
}

impl OptionSet {
    /// The paper's headline option pair: uniform FP8 vs uniform FP4.
    pub fn fp8_fp4() -> Self {
        OptionSet {
            options: vec![
                LinearPrecision::uniform(Precision::Fp8),
                LinearPrecision::uniform(Precision::Fp4),
            ],
        }
    }

    /// All 8 FP8/FP4 combinations over (input, weight, grad).
    pub fn mixed() -> Self {
        let ps = [Precision::Fp8, Precision::Fp4];
        let mut options = Vec::with_capacity(8);
        for &input in &ps {
            for &weight in &ps {
                for &grad in &ps {
                    options.push(LinearPrecision {
                        input,
                        weight,
                        grad,
                    });
                }
            }
        }
        OptionSet { options }
    }

    /// A custom option set.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn custom(options: Vec<LinearPrecision>) -> Self {
        assert!(!options.is_empty(), "option set must be non-empty");
        OptionSet { options }
    }

    /// The options, in decision-variable order.
    pub fn options(&self) -> &[LinearPrecision] {
        &self.options
    }

    /// Number of options per layer (`n` in the ILP).
    pub fn len(&self) -> usize {
        self.options.len()
    }

    /// Whether the set is empty (never true for constructed sets).
    pub fn is_empty(&self) -> bool {
        self.options.is_empty()
    }
}

impl Default for OptionSet {
    fn default() -> Self {
        OptionSet::fp8_fp4()
    }
}

/// FLOP accounting for a model: how much each layer contributes to total
/// linear-layer training FLOPs, and what fraction of FLOPs runs in FP4 under
/// a given option (the paper's efficiency metric, §5.1).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlopModel {
    /// `flops_fraction[i]` = layer i's share of total linear FLOPs.
    flops_fraction: Vec<f64>,
}

impl FlopModel {
    /// Builds the FLOP model for a config (token count cancels out).
    pub fn new(cfg: &ModelConfig) -> Self {
        let per_layer: Vec<u64> = LayerId::enumerate(cfg.n_layers)
            .iter()
            .map(|id| id.training_flops(cfg, 1))
            .collect();
        let total: u64 = per_layer.iter().sum();
        FlopModel {
            flops_fraction: per_layer.iter().map(|&f| f as f64 / total as f64).collect(),
        }
    }

    /// Number of layers covered.
    pub fn n_layers(&self) -> usize {
        self.flops_fraction.len()
    }

    /// Layer `i`'s share of total linear FLOPs.
    pub fn fraction(&self, i: usize) -> f64 {
        self.flops_fraction[i]
    }

    /// Efficiency saving `e_{i,j}`: the fraction of the *model's* linear
    /// FLOPs that run in FP4 if layer `i` picks `option`.
    pub fn efficiency(&self, i: usize, option: LinearPrecision) -> f64 {
        self.flops_fraction[i] * option.fp4_gemm_fraction()
    }

    /// Total FP4 FLOP fraction of a full scheme.
    pub fn scheme_fp4_fraction(&self, scheme: &[LinearPrecision]) -> f64 {
        assert_eq!(scheme.len(), self.flops_fraction.len(), "scheme length");
        scheme
            .iter()
            .enumerate()
            .map(|(i, &p)| self.efficiency(i, p))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_set_is_fp8_fp4() {
        let s = OptionSet::default();
        assert_eq!(s.len(), 2);
        assert_eq!(s.options()[0], LinearPrecision::uniform(Precision::Fp8));
        assert_eq!(s.options()[1], LinearPrecision::uniform(Precision::Fp4));
    }

    #[test]
    fn mixed_set_has_eight_unique_options() {
        let s = OptionSet::mixed();
        assert_eq!(s.len(), 8);
        let mut set = std::collections::HashSet::new();
        for &o in s.options() {
            set.insert(o);
        }
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn flop_fractions_sum_to_one() {
        let fm = FlopModel::new(&ModelConfig::tinyllama_1b_sim());
        let total: f64 = (0..fm.n_layers()).map(|i| fm.fraction(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mlp_layers_carry_more_flops_than_attention() {
        let cfg = ModelConfig::tinyllama_1b_sim();
        let fm = FlopModel::new(&cfg);
        use snip_nn::LayerKind;
        let q = LayerId::new(0, LayerKind::Q).linear_index();
        let gate = LayerId::new(0, LayerKind::Gate).linear_index();
        assert!(fm.fraction(gate) > fm.fraction(q));
    }

    #[test]
    fn all_fp4_scheme_has_unit_efficiency() {
        let cfg = ModelConfig::tiny_test();
        let fm = FlopModel::new(&cfg);
        let scheme = vec![LinearPrecision::uniform(Precision::Fp4); cfg.n_linear_layers()];
        assert!((fm.scheme_fp4_fraction(&scheme) - 1.0).abs() < 1e-9);
        let scheme8 = vec![LinearPrecision::uniform(Precision::Fp8); cfg.n_linear_layers()];
        assert_eq!(fm.scheme_fp4_fraction(&scheme8), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_custom_set_rejected() {
        let _ = OptionSet::custom(vec![]);
    }
}
