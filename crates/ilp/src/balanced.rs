//! Time-equalizing pipeline-stage targets (an extension of §5.3).
//!
//! The paper's grouped constraint (Eq. 5) makes every pipeline stage
//! contribute the same *relative* share of the efficiency target. When
//! stages carry unequal FLOPs — Fig. 12's TinyLlama split is 6/6/6/4
//! blocks — relative balance preserves the 6:6:6:4 stage-*time* ratio, so
//! the short stage still idles in the bubble. This module computes the
//! per-stage FP4 targets that equalize stage **times** instead: put more
//! FP8 (slower, higher quality) in the short stage and more FP4 in the long
//! ones, subject to the same global efficiency target.
//!
//! Under the paper's throughput model (§2.2: FP4 = 2× FP8) every non-FP4
//! GEMM runs in FP8, so a stage holding `C_k` FLOPs of which `f_k` run in
//! FP4 takes
//!
//! ```text
//! time_k = (C_k − f_k)/2 + f_k/4 = C_k/2 − f_k/4
//! ```
//!
//! (in BF16-throughput units). Equalizing `time_k = T` across stages with
//! the budget `Σ f_k = E_t` is a water-filling problem: `f_k =
//! clip(2·C_k − 4·T, 0, C_k)`, with `T` chosen so the budget holds. The
//! clip captures the honest physical limits — a stage cannot exceed all-FP4
//! (`f_k = C_k`), nor run negative FP4 — so when the budget is extreme the
//! result is the *closest achievable* time balance, not a forced equality.
//!
//! [`solve_time_balanced`] feeds these targets straight into
//! [`solve_grouped`]; the
//! `ablation_pipeline_balance` experiment measures the resulting bubble
//! reduction against the relative-balance interpretation.

use crate::grouped::solve_grouped;
use crate::problem::McKnapsack;
use crate::solve::{Solution, SolveError, SolveOptions};

/// Per-stage FP4 FLOP targets (same units as `stage_flops`) that equalize
/// stage times under the FP8/FP4 throughput model, subject to the global
/// budget `Σ targets = global_target · Σ stage_flops`.
///
/// # Errors
///
/// [`SolveError::Invalid`] if `stage_flops` is empty, contains a
/// non-positive or non-finite entry, or `global_target` is outside
/// `[0, 1]`.
pub fn time_balanced_targets(
    stage_flops: &[f64],
    global_target: f64,
) -> Result<Vec<f64>, SolveError> {
    if stage_flops.is_empty() {
        return Err(SolveError::Invalid("no pipeline stages".into()));
    }
    if let Some(&bad) = stage_flops.iter().find(|&&c| !(c.is_finite() && c > 0.0)) {
        return Err(SolveError::Invalid(format!(
            "stage FLOPs must be positive and finite, got {bad}"
        )));
    }
    if !(0.0..=1.0).contains(&global_target) {
        return Err(SolveError::Invalid(format!(
            "global target {global_target} outside [0, 1]"
        )));
    }
    let total: f64 = stage_flops.iter().sum();
    let budget = global_target * total;

    // Water-fill exactly over the breakpoints of
    //   g(T) = Σ_k clip(2·C_k − 4·T, 0, C_k),
    // which is continuous, piecewise linear and non-increasing in T:
    // stage k saturates at all-FP4 for T ≤ C_k/4 and reaches zero FP4 at
    // T ≥ C_k/2.
    let g = |t: f64| -> f64 {
        stage_flops
            .iter()
            .map(|&c| (2.0 * c - 4.0 * t).clamp(0.0, c))
            .sum()
    };
    let mut breakpoints: Vec<f64> = stage_flops
        .iter()
        .flat_map(|&c| [c / 4.0, c / 2.0])
        .collect();
    breakpoints.push(0.0);
    breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    // Find the segment [lo, hi] where g crosses the budget, then solve the
    // linear equation on it. g(0) = total ≥ budget and g(max C/2) = 0 ≤
    // budget, so a crossing always exists.
    let mut t_star = *breakpoints.last().expect("non-empty breakpoints");
    for w in breakpoints.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let (g_lo, g_hi) = (g(lo), g(hi));
        if g_hi <= budget && budget <= g_lo {
            t_star = if (g_lo - g_hi).abs() < 1e-30 {
                lo
            } else {
                lo + (g_lo - budget) / (g_lo - g_hi) * (hi - lo)
            };
            break;
        }
    }
    let mut targets: Vec<f64> = stage_flops
        .iter()
        .map(|&c| (2.0 * c - 4.0 * t_star).clamp(0.0, c))
        .collect();
    // Remove residual float error so downstream budget checks see an exact
    // total; distribute onto unsaturated stages.
    let drift = budget - targets.iter().sum::<f64>();
    if drift.abs() > 0.0 {
        for (t, &c) in targets.iter_mut().zip(stage_flops) {
            let room = if drift > 0.0 { c - *t } else { *t };
            if room > 0.0 {
                let adjust = drift.abs().min(room) * drift.signum();
                *t += adjust;
                break;
            }
        }
    }
    Ok(targets)
}

/// Stage times `C_k/2 − f_k/4` (BF16-throughput units) for a given per-stage
/// FP4 split — the quantity [`time_balanced_targets`] equalizes.
pub fn stage_times(stage_flops: &[f64], stage_fp4: &[f64]) -> Vec<f64> {
    assert_eq!(stage_flops.len(), stage_fp4.len(), "stage count mismatch");
    stage_flops
        .iter()
        .zip(stage_fp4)
        .map(|(&c, &f)| c / 2.0 - f / 4.0)
        .collect()
}

/// Pipeline-bubble proxy: the time lost to stage imbalance, as
/// `Σ_k (max_time − time_k)` divided by `Σ_k max_time` (0 = perfectly
/// balanced, → 1 = one stage dominates).
pub fn imbalance_fraction(times: &[f64]) -> f64 {
    if times.is_empty() {
        return 0.0;
    }
    let max = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if max <= 0.0 {
        return 0.0;
    }
    let lost: f64 = times.iter().map(|&t| max - t).sum();
    lost / (max * times.len() as f64)
}

/// Solves the grouped ILP with time-equalizing stage targets: computes each
/// stage's FLOPs from its groups' maximum efficiency option (the all-FP4
/// capacity), water-fills the targets, and delegates to
/// [`solve_grouped`].
///
/// `stage_of[i]` assigns decision group `i` to a stage, as in
/// `solve_grouped`; `n_stages` is the stage count; `global_target` is the
/// paper's `E_t`.
///
/// # Errors
///
/// Propagates validation and infeasibility errors from the water-fill and
/// the per-stage solves.
pub fn solve_time_balanced(
    problem: &McKnapsack,
    stage_of: &[usize],
    n_stages: usize,
    global_target: f64,
    opts: &SolveOptions,
) -> Result<Solution, SolveError> {
    problem.validate().map_err(SolveError::Invalid)?;
    if stage_of.len() != problem.groups.len() {
        return Err(SolveError::Invalid(format!(
            "stage_of has {} entries for {} groups",
            stage_of.len(),
            problem.groups.len()
        )));
    }
    if n_stages == 0 {
        return Err(SolveError::Invalid("no pipeline stages".into()));
    }
    if let Some(&bad) = stage_of.iter().find(|&&s| s >= n_stages) {
        return Err(SolveError::Invalid(format!(
            "stage index {bad} out of range ({n_stages} stages)"
        )));
    }
    // A group's FLOP capacity is its best achievable efficiency (all-FP4
    // option); stage capacity is the sum over member groups.
    let mut stage_flops = vec![0.0f64; n_stages];
    for (i, group) in problem.groups.iter().enumerate() {
        let cap = group
            .iter()
            .map(|c| c.efficiency)
            .fold(f64::NEG_INFINITY, f64::max);
        stage_flops[stage_of[i]] += cap.max(0.0);
    }
    if let Some(k) = stage_flops.iter().position(|&c| c <= 0.0) {
        return Err(SolveError::Invalid(format!(
            "stage {k} has no FP4 capacity (empty or zero-efficiency groups)"
        )));
    }
    let targets = time_balanced_targets(&stage_flops, global_target)?;
    solve_grouped(problem, stage_of, &targets, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Choice;

    #[test]
    fn targets_sum_to_budget() {
        let flops = [6.0, 6.0, 6.0, 4.0]; // Fig. 12's block split
        for e_t in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let t = time_balanced_targets(&flops, e_t).unwrap();
            let total: f64 = t.iter().sum();
            assert!((total - e_t * 22.0).abs() < 1e-9, "E_t={e_t}: Σ={total}");
            for (k, (&f, &c)) in t.iter().zip(&flops).enumerate() {
                assert!((0.0..=c + 1e-12).contains(&f), "stage {k}: {f} vs cap {c}");
            }
        }
    }

    #[test]
    fn equal_stages_get_equal_targets() {
        let t = time_balanced_targets(&[5.0, 5.0, 5.0], 0.6).unwrap();
        for &f in &t {
            assert!((f - 3.0).abs() < 1e-9, "{t:?}");
        }
        let times = stage_times(&[5.0, 5.0, 5.0], &t);
        assert!(times.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9));
    }

    #[test]
    fn unequal_stages_equalize_times_when_unclipped() {
        // 6/4 split at 50%: relative balance gives times 6/2−3/4·... —
        // time-balance instead solves 3−f0/4 = 2−f1/4 with f0+f1 = 5
        // → f0 = 4.5, f1 = 0.5.
        let flops = [6.0, 4.0];
        let t = time_balanced_targets(&flops, 0.5).unwrap();
        assert!((t[0] - 4.5).abs() < 1e-9, "{t:?}");
        assert!((t[1] - 0.5).abs() < 1e-9, "{t:?}");
        let times = stage_times(&flops, &t);
        assert!((times[0] - times[1]).abs() < 1e-9, "{times:?}");
        // Relative balance would have left a 6:4 time ratio.
        let rel = stage_times(&flops, &[3.0, 2.0]);
        assert!((rel[0] / rel[1] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn extreme_imbalance_saturates_the_long_stage() {
        // 10/2 split: even all-FP4 on the long stage (time 2.5) is slower
        // than all-FP8 on the short one (time 1.0), so the water-fill pours
        // the entire long stage into FP4 before touching the short stage.
        let flops = [10.0, 2.0];
        let t = time_balanced_targets(&flops, 0.9).unwrap(); // budget 10.8
        assert!((t[0] - 10.0).abs() < 1e-9, "long stage all-FP4: {t:?}");
        assert!((t[1] - 0.8).abs() < 1e-9, "remainder to short stage: {t:?}");
        let times = stage_times(&flops, &t);
        assert!(
            times[0] > times[1],
            "long stage remains the bottleneck: {times:?}"
        );
    }

    #[test]
    fn low_budget_gives_short_stage_no_fp4() {
        // 6/4 at E_t = 0.1 (budget 1.0): equalizing would need negative FP4
        // on the short stage — it clips at zero and the long stage takes
        // the whole budget.
        let flops = [6.0, 4.0];
        let t = time_balanced_targets(&flops, 0.1).unwrap();
        assert!((t[0] - 1.0).abs() < 1e-9, "{t:?}");
        assert!(t[1].abs() < 1e-9, "{t:?}");
    }

    #[test]
    fn endpoints() {
        let flops = [3.0, 7.0];
        let zero = time_balanced_targets(&flops, 0.0).unwrap();
        assert!(zero.iter().all(|&f| f.abs() < 1e-12));
        let one = time_balanced_targets(&flops, 1.0).unwrap();
        assert!((one[0] - 3.0).abs() < 1e-9 && (one[1] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(matches!(
            time_balanced_targets(&[], 0.5),
            Err(SolveError::Invalid(_))
        ));
        assert!(matches!(
            time_balanced_targets(&[1.0, -2.0], 0.5),
            Err(SolveError::Invalid(_))
        ));
        assert!(matches!(
            time_balanced_targets(&[1.0, f64::NAN], 0.5),
            Err(SolveError::Invalid(_))
        ));
        assert!(matches!(
            time_balanced_targets(&[1.0], 1.5),
            Err(SolveError::Invalid(_))
        ));
    }

    #[test]
    fn imbalance_fraction_behaviour() {
        assert_eq!(imbalance_fraction(&[]), 0.0);
        assert_eq!(imbalance_fraction(&[2.0, 2.0, 2.0]), 0.0);
        // One stage at 4, three at 2: lost = 0+2+2+2 = 6 of 16.
        assert!((imbalance_fraction(&[4.0, 2.0, 2.0, 2.0]) - 6.0 / 16.0).abs() < 1e-12);
        assert_eq!(imbalance_fraction(&[0.0, 0.0]), 0.0);
    }

    /// Two stages with FLOPs 2:1 (groups of capacity 2 and 1). Options per
    /// group: FP8 (e=0) or all-FP4 (e=capacity), equal quality cost.
    fn lopsided_problem() -> (McKnapsack, Vec<usize>) {
        let groups = vec![
            vec![Choice::new(0.0, 0.0), Choice::new(1.0, 2.0)],
            vec![Choice::new(0.0, 0.0), Choice::new(1.0, 1.0)],
        ];
        (McKnapsack::new(groups, 0.0), vec![0, 1])
    }

    #[test]
    fn time_balanced_solve_beats_relative_balance_on_bubble() {
        let (p, stages) = lopsided_problem();
        let e_t = 0.5; // 1.5 units of FP4 FLOPs over 3 total
                       // Relative balance: each stage gives e_t · C_k → targets [1.0, 0.5].
                       // Neither group has a half-FP4 option, so the solver upgrades both
                       // to all-FP4 → times [1.0, 0.25] — heavy imbalance.
        let rel = solve_grouped(&p, &stages, &[1.0, 0.5], &SolveOptions::default()).unwrap();
        // Time-balance: water-fill clips the short stage to f = [1.5, 0];
        // only stage 0 must upgrade (to its all-FP4 option, e = 2) and the
        // short stage stays FP8 → times [0.5, 0.5], perfectly flat.
        let bal = solve_time_balanced(&p, &stages, 2, e_t, &SolveOptions::default()).unwrap();
        // Each group is its own stage here, so per-stage FP4 = the picked
        // option's efficiency.
        let times_of = |sol: &Solution| {
            let fp4: Vec<f64> = sol
                .picks
                .iter()
                .enumerate()
                .map(|(i, &j)| p.groups[i][j].efficiency)
                .collect();
            stage_times(&[2.0, 1.0], &fp4)
        };
        let rel_imb = imbalance_fraction(&times_of(&rel));
        let bal_imb = imbalance_fraction(&times_of(&bal));
        assert!(
            bal_imb < rel_imb,
            "time-balanced imbalance {bal_imb} !< relative {rel_imb}"
        );
        // And the flat assignment is also cheaper in quality.
        assert!(bal.objective < rel.objective);
    }

    #[test]
    fn solve_validation_errors() {
        let (p, _) = lopsided_problem();
        assert!(matches!(
            solve_time_balanced(&p, &[0], 1, 0.5, &SolveOptions::default()),
            Err(SolveError::Invalid(_))
        ));
        assert!(matches!(
            solve_time_balanced(&p, &[0, 3], 2, 0.5, &SolveOptions::default()),
            Err(SolveError::Invalid(_))
        ));
        assert!(matches!(
            solve_time_balanced(&p, &[0, 1], 0, 0.5, &SolveOptions::default()),
            Err(SolveError::Invalid(_))
        ));
    }

    #[test]
    fn budget_respected_through_grouped_solve() {
        let (p, stages) = lopsided_problem();
        let sol = solve_time_balanced(&p, &stages, 2, 0.5, &SolveOptions::default()).unwrap();
        // Water-fill budget = E_t · total capacity = 0.5 · 3 = 1.5.
        assert!(sol.efficiency + 1e-9 >= 1.5);
    }
}
