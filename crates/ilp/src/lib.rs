//! # snip-ilp
//!
//! Exact Integer-Linear-Programming solver for SNIP's precision policy
//! (paper §5.2–§5.3).
//!
//! SNIP maps layer-wise precision selection to a **multiple-choice knapsack**:
//! each layer is a decision group, each precision assignment an option with a
//! quality loss `q` and an efficiency saving `e`; exactly one option per
//! layer must be picked while the total efficiency meets a target. The
//! solver is an exact branch-and-bound with LP-relaxation bounds
//! ([`solve()`]) and a pipeline-stage-aware grouped variant ([`solve_grouped`])
//! implementing the paper's per-stage constraint (Eq. 5).
//!
//! # Example
//!
//! ```
//! use snip_ilp::{Choice, McKnapsack, solve, SolveOptions};
//!
//! // Two layers, each choosing between FP8 (no saving, no loss) and FP4
//! // (full saving, some loss). Layer 0 is the cheaper one to quantize.
//! let problem = McKnapsack::new(
//!     vec![
//!         vec![Choice::new(0.01, 0.0), Choice::new(0.02, 0.5)],
//!         vec![Choice::new(0.01, 0.0), Choice::new(0.90, 0.5)],
//!     ],
//!     0.5,
//! );
//! let solution = solve(&problem, &SolveOptions::default()).unwrap();
//! assert_eq!(solution.picks, vec![1, 0]);
//! ```

pub mod balanced;
pub mod grouped;
pub mod problem;
pub mod solve;

pub use balanced::{imbalance_fraction, solve_time_balanced, stage_times, time_balanced_targets};
pub use grouped::{contiguous_stages, solve_grouped};
pub use problem::{Choice, McKnapsack};
pub use solve::{solve, solve_bruteforce, Solution, SolveError, SolveOptions};
