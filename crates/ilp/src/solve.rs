//! Exact branch-and-bound solver for the multiple-choice knapsack ILP.
//!
//! The paper solves its ILP with `scipy.optimize.milp` (HiGHS) under a 30 s
//! time limit, noting it "usually takes a few seconds" (§6.1). This solver is
//! specialized to the one problem shape SNIP produces — multiple-choice
//! knapsack — and is exact:
//!
//! 1. **Dominance pruning**: within each group, an option is dropped if
//!    another option has at least its efficiency at no more quality loss
//!    (some optimal solution always avoids dominated options).
//! 2. **LP relaxation bound**: the classic MCKP relaxation — start every
//!    group at its cheapest option and buy efficiency increments along each
//!    group's lower convex hull in order of marginal rate `Δq/Δe` — gives a
//!    lower bound with at most one fractional group.
//! 3. **Branch & bound**: branch on the fractional group; rounding the
//!    fractional increment up gives feasible incumbents for free.

use crate::problem::{Choice, McKnapsack};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Solver options.
#[derive(Clone, Copy, Debug)]
pub struct SolveOptions {
    /// Wall-clock budget; on expiry the best incumbent is returned with
    /// `proven_optimal = false`. Matches the paper's 30 s limit by default.
    pub time_limit: Duration,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            time_limit: Duration::from_secs(30),
        }
    }
}

/// A solved assignment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Picked option index per group (original indices of the instance).
    pub picks: Vec<usize>,
    /// Total quality loss of the assignment.
    pub objective: f64,
    /// Total efficiency of the assignment.
    pub efficiency: f64,
    /// Branch-and-bound nodes explored.
    pub nodes: u64,
    /// Whether optimality was proven before the time limit.
    pub proven_optimal: bool,
}

/// Solver failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// Malformed instance (empty group, non-finite values, …).
    Invalid(String),
    /// No assignment can reach the efficiency target.
    Infeasible,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Invalid(msg) => write!(f, "invalid instance: {msg}"),
            SolveError::Infeasible => write!(f, "efficiency target unreachable"),
        }
    }
}

impl std::error::Error for SolveError {}

/// A frontier point: original option index plus its values.
#[derive(Clone, Copy, Debug)]
struct Point {
    orig: usize,
    e: f64,
    q: f64,
}

/// Per-group preprocessed data.
#[derive(Clone, Debug)]
struct Group {
    /// Non-dominated options, efficiency ascending (quality ascending too).
    frontier: Vec<Point>,
    /// Indices into `frontier` forming the lower convex hull.
    hull: Vec<usize>,
}

fn preprocess(options: &[Choice]) -> Group {
    // Sort by efficiency ascending, quality ascending to break ties.
    let mut idx: Vec<usize> = (0..options.len()).collect();
    // Sort by efficiency ascending; ties broken by quality *descending* so
    // that the reverse sweep visits the better (lower-q) duplicate last and
    // keeps exactly one point per efficiency level.
    idx.sort_by(|&a, &b| {
        options[a]
            .efficiency
            .partial_cmp(&options[b].efficiency)
            .unwrap()
            .then(options[b].quality.partial_cmp(&options[a].quality).unwrap())
    });
    // Sweep from highest efficiency down, keeping strictly-better quality.
    let mut frontier_rev: Vec<Point> = Vec::new();
    let mut best_q = f64::INFINITY;
    for &i in idx.iter().rev() {
        let (e, q) = (options[i].efficiency, options[i].quality);
        if q < best_q {
            frontier_rev.push(Point { orig: i, e, q });
            best_q = q;
        }
    }
    frontier_rev.reverse();
    let frontier = frontier_rev;

    // Lower convex hull over (e, q): marginal rates must be non-decreasing.
    let mut hull: Vec<usize> = Vec::with_capacity(frontier.len());
    for i in 0..frontier.len() {
        while hull.len() >= 2 {
            let a = frontier[hull[hull.len() - 2]];
            let b = frontier[hull[hull.len() - 1]];
            let c = frontier[i];
            // Keep b only if rate(a→b) ≤ rate(a→c) (cross-product form).
            let keep = (b.q - a.q) * (c.e - a.e) <= (c.q - a.q) * (b.e - a.e);
            if keep {
                break;
            }
            hull.pop();
        }
        hull.push(i);
    }
    Group { frontier, hull }
}

/// One efficiency-buying increment on a group's hull.
#[derive(Clone, Copy, Debug)]
struct Increment {
    group: usize,
    /// Hull position reached by taking this increment.
    hull_pos: usize,
    de: f64,
    dq: f64,
}

struct Searcher<'a> {
    groups: &'a [Group],
    target: f64,
    deadline: Instant,
    nodes: u64,
    timed_out: bool,
    /// Best incumbent: (objective, picks as frontier indices).
    best: Option<(f64, Vec<usize>)>,
}

/// Result of the LP relaxation at a node.
enum LpOutcome {
    /// Relaxation infeasible → prune.
    Infeasible,
    /// Bound plus the fractional group (if any) and the integral rounding
    /// (frontier index per group).
    Bound {
        bound: f64,
        fractional_group: Option<usize>,
        rounded: Vec<usize>,
        rounded_feasible: bool,
    },
}

impl<'a> Searcher<'a> {
    /// LP relaxation with some groups fixed (`fixed[i] = Some(frontier idx)`).
    fn lp(&self, fixed: &[Option<usize>]) -> LpOutcome {
        let mut base_q = 0.0;
        let mut base_e = 0.0;
        let mut rounded: Vec<usize> = vec![0; self.groups.len()];
        let mut increments: Vec<Increment> = Vec::new();
        for (i, g) in self.groups.iter().enumerate() {
            if let Some(f) = fixed[i] {
                base_q += g.frontier[f].q;
                base_e += g.frontier[f].e;
                rounded[i] = f;
            } else {
                // Base = cheapest-quality point = first frontier point.
                base_q += g.frontier[0].q;
                base_e += g.frontier[0].e;
                rounded[i] = 0;
                for w in g.hull.windows(2) {
                    let a = g.frontier[w[0]];
                    let b = g.frontier[w[1]];
                    increments.push(Increment {
                        group: i,
                        hull_pos: w[1],
                        de: b.e - a.e,
                        dq: b.q - a.q,
                    });
                }
            }
        }
        let mut needed = self.target - base_e;
        if needed <= 1e-12 {
            return LpOutcome::Bound {
                bound: base_q,
                fractional_group: None,
                rounded,
                rounded_feasible: true,
            };
        }
        increments.sort_by(|x, y| {
            let rx = x.dq / x.de.max(1e-300);
            let ry = y.dq / y.de.max(1e-300);
            rx.partial_cmp(&ry).unwrap()
        });
        let mut bound = base_q;
        for inc in &increments {
            if inc.de <= 0.0 {
                continue;
            }
            if inc.de >= needed {
                // Fractional take.
                bound += inc.dq * (needed / inc.de);
                rounded[inc.group] = inc.hull_pos; // round up → feasible
                return LpOutcome::Bound {
                    bound,
                    fractional_group: Some(inc.group),
                    rounded,
                    rounded_feasible: true,
                };
            }
            bound += inc.dq;
            needed -= inc.de;
            rounded[inc.group] = inc.hull_pos;
        }
        if needed <= 1e-12 {
            return LpOutcome::Bound {
                bound,
                fractional_group: None,
                rounded,
                rounded_feasible: true,
            };
        }
        LpOutcome::Infeasible
    }

    fn objective_of(&self, picks: &[usize]) -> (f64, f64) {
        let mut q = 0.0;
        let mut e = 0.0;
        for (g, &p) in self.groups.iter().zip(picks) {
            q += g.frontier[p].q;
            e += g.frontier[p].e;
        }
        (q, e)
    }

    fn offer(&mut self, picks: &[usize]) {
        let (q, e) = self.objective_of(picks);
        if e + 1e-12 < self.target {
            return;
        }
        match &self.best {
            Some((bq, _)) if *bq <= q => {}
            _ => self.best = Some((q, picks.to_vec())),
        }
    }

    fn search(&mut self, fixed: &mut Vec<Option<usize>>) {
        self.nodes += 1;
        if self.nodes.is_multiple_of(64) && Instant::now() > self.deadline {
            self.timed_out = true;
        }
        if self.timed_out {
            return;
        }
        match self.lp(fixed) {
            LpOutcome::Infeasible => {}
            LpOutcome::Bound {
                bound,
                fractional_group,
                rounded,
                rounded_feasible,
            } => {
                if let Some((bq, _)) = &self.best {
                    if bound >= *bq - 1e-12 {
                        return; // prune: cannot beat incumbent
                    }
                }
                if rounded_feasible {
                    self.offer(&rounded);
                }
                let Some(gf) = fractional_group else {
                    // LP integral → `rounded` is optimal for this subtree.
                    return;
                };
                // Branch over every frontier option of the fractional group.
                let n_opts = self.groups[gf].frontier.len();
                for opt in 0..n_opts {
                    fixed[gf] = Some(opt);
                    self.search(fixed);
                    if self.timed_out {
                        break;
                    }
                }
                fixed[gf] = None;
            }
        }
    }
}

/// Solves the instance exactly (up to the time limit).
///
/// # Errors
///
/// [`SolveError::Invalid`] for malformed instances, [`SolveError::Infeasible`]
/// when no assignment reaches the target.
///
/// # Example
///
/// ```
/// use snip_ilp::{Choice, McKnapsack, solve, SolveOptions};
/// let p = McKnapsack::new(
///     vec![
///         vec![Choice::new(0.0, 0.0), Choice::new(5.0, 1.0)],
///         vec![Choice::new(0.0, 0.0), Choice::new(1.0, 1.0)],
///     ],
///     1.0,
/// );
/// let s = solve(&p, &SolveOptions::default()).unwrap();
/// assert_eq!(s.picks, vec![0, 1]); // buy efficiency from the cheap group
/// ```
pub fn solve(problem: &McKnapsack, opts: &SolveOptions) -> Result<Solution, SolveError> {
    problem.validate().map_err(SolveError::Invalid)?;
    if !problem.is_feasible() {
        return Err(SolveError::Infeasible);
    }
    let groups: Vec<Group> = problem.groups.iter().map(|g| preprocess(g)).collect();
    let mut searcher = Searcher {
        groups: &groups,
        target: problem.target,
        deadline: Instant::now() + opts.time_limit,
        nodes: 0,
        timed_out: false,
        best: None,
    };
    let mut fixed: Vec<Option<usize>> = vec![None; groups.len()];
    searcher.search(&mut fixed);
    let (obj, picks_frontier) = searcher.best.ok_or(SolveError::Infeasible)?;
    let picks: Vec<usize> = picks_frontier
        .iter()
        .enumerate()
        .map(|(i, &p)| groups[i].frontier[p].orig)
        .collect();
    let (q, e) = problem.evaluate(&picks);
    debug_assert!((q - obj).abs() < 1e-9 * (1.0 + obj.abs()));
    Ok(Solution {
        picks,
        objective: q,
        efficiency: e,
        nodes: searcher.nodes,
        proven_optimal: !searcher.timed_out,
    })
}

/// Exhaustive reference solver for testing (cartesian product of options).
///
/// # Panics
///
/// Panics if the search space exceeds ~10⁷ assignments.
pub fn solve_bruteforce(problem: &McKnapsack) -> Result<Solution, SolveError> {
    problem.validate().map_err(SolveError::Invalid)?;
    let space: f64 = problem.groups.iter().map(|g| g.len() as f64).product();
    assert!(space <= 1e7, "brute force space too large ({space})");
    let m = problem.groups.len();
    let mut picks = vec![0usize; m];
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut nodes = 0u64;
    loop {
        nodes += 1;
        let (q, e) = problem.evaluate(&picks);
        if e + 1e-12 >= problem.target {
            match &best {
                Some((bq, _)) if *bq <= q => {}
                _ => best = Some((q, picks.clone())),
            }
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == m {
                let (q, e) = match &best {
                    Some((_, p)) => problem.evaluate(p),
                    None => return Err(SolveError::Infeasible),
                };
                return Ok(Solution {
                    picks: best.unwrap().1,
                    objective: q,
                    efficiency: e,
                    nodes,
                    proven_optimal: true,
                });
            }
            picks[i] += 1;
            if picks[i] < problem.groups[i].len() {
                break;
            }
            picks[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> SolveOptions {
        SolveOptions::default()
    }

    #[test]
    fn picks_cheapest_efficiency_source() {
        let p = McKnapsack::new(
            vec![
                vec![Choice::new(0.0, 0.0), Choice::new(5.0, 1.0)],
                vec![Choice::new(0.0, 0.0), Choice::new(1.0, 1.0)],
                vec![Choice::new(0.0, 0.0), Choice::new(3.0, 1.0)],
            ],
            2.0,
        );
        let s = solve(&p, &opts()).unwrap();
        assert_eq!(s.picks, vec![0, 1, 1]);
        assert_eq!(s.objective, 4.0);
        assert!(s.proven_optimal);
    }

    #[test]
    fn zero_target_takes_all_bases() {
        let p = McKnapsack::new(
            vec![
                vec![Choice::new(0.1, 0.0), Choice::new(5.0, 1.0)],
                vec![Choice::new(0.2, 0.0), Choice::new(1.0, 1.0)],
            ],
            0.0,
        );
        let s = solve(&p, &opts()).unwrap();
        assert_eq!(s.picks, vec![0, 0]);
        assert!((s.objective - 0.3).abs() < 1e-12);
    }

    #[test]
    fn full_target_takes_all_upgrades() {
        let p = McKnapsack::new(
            vec![
                vec![Choice::new(0.0, 0.0), Choice::new(5.0, 1.0)],
                vec![Choice::new(0.0, 0.0), Choice::new(1.0, 1.0)],
            ],
            2.0,
        );
        let s = solve(&p, &opts()).unwrap();
        assert_eq!(s.picks, vec![1, 1]);
    }

    #[test]
    fn infeasible_target_errors() {
        let p = McKnapsack::new(vec![vec![Choice::new(0.0, 0.5)]], 1.0);
        assert_eq!(solve(&p, &opts()), Err(SolveError::Infeasible));
    }

    #[test]
    fn dominated_options_never_picked() {
        // Option 1 dominates option 2 (more efficiency, less quality loss).
        let p = McKnapsack::new(
            vec![vec![
                Choice::new(0.0, 0.0),
                Choice::new(1.0, 1.0),
                Choice::new(2.0, 0.9),
            ]],
            0.5,
        );
        let s = solve(&p, &opts()).unwrap();
        assert_eq!(s.picks, vec![1]);
    }

    #[test]
    fn non_convex_option_reachable() {
        // A point off the lower hull can still be the unique optimum; the
        // solver must find it by branching. Single group, target 0.6:
        // options: (q=0, e=0), (q=10, e=1.0), and off-hull (q=6, e=0.7).
        let p = McKnapsack::new(
            vec![vec![
                Choice::new(0.0, 0.0),
                Choice::new(10.0, 1.0),
                Choice::new(6.0, 0.7),
            ]],
            0.6,
        );
        let s = solve(&p, &opts()).unwrap();
        assert_eq!(s.picks, vec![2]);
        assert_eq!(s.objective, 6.0);
    }

    #[test]
    fn matches_bruteforce_on_random_instances() {
        use snip_tensor::rng::Rng;
        let mut rng = Rng::seed_from(1234);
        for trial in 0..60 {
            let m = 1 + rng.below(6);
            let groups: Vec<Vec<Choice>> = (0..m)
                .map(|_| {
                    let n = 1 + rng.below(4);
                    (0..n)
                        .map(|_| Choice::new(rng.next_f64() * 10.0, rng.next_f64()))
                        .collect()
                })
                .collect();
            let p = McKnapsack::new(groups, rng.next_f64() * m as f64 * 0.7);
            let exact = solve(&p, &opts());
            let brute = solve_bruteforce(&p);
            match (exact, brute) {
                (Ok(a), Ok(b)) => {
                    assert!(
                        (a.objective - b.objective).abs() < 1e-9 * (1.0 + b.objective.abs()),
                        "trial {trial}: bb {} vs brute {}",
                        a.objective,
                        b.objective
                    );
                    assert!(a.efficiency + 1e-9 >= p.target);
                }
                (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
                (a, b) => panic!("trial {trial}: divergent results {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn large_instance_solves_quickly() {
        // The SNIP shape: 560 layers × 2 options (the 70B model).
        use snip_tensor::rng::Rng;
        let mut rng = Rng::seed_from(7);
        let groups: Vec<Vec<Choice>> = (0..560)
            .map(|_| {
                vec![
                    Choice::new(rng.next_f64() * 0.01, 0.0),
                    Choice::new(rng.next_f64(), 1.0 / 560.0),
                ]
            })
            .collect();
        let p = McKnapsack::new(groups, 0.5);
        let t0 = std::time::Instant::now();
        let s = solve(&p, &opts()).unwrap();
        assert!(s.proven_optimal);
        assert!(s.efficiency + 1e-9 >= 0.5);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn time_limit_returns_incumbent() {
        use snip_tensor::rng::Rng;
        let mut rng = Rng::seed_from(8);
        let groups: Vec<Vec<Choice>> = (0..200)
            .map(|_| {
                (0..6)
                    .map(|_| Choice::new(rng.next_f64(), rng.next_f64()))
                    .collect()
            })
            .collect();
        let p = McKnapsack::new(groups, 60.0);
        let s = solve(
            &p,
            &SolveOptions {
                time_limit: Duration::from_millis(1),
            },
        );
        // Either solved fast or returned a feasible incumbent.
        if let Ok(s) = s {
            assert!(s.efficiency + 1e-9 >= 60.0);
        }
    }
}
