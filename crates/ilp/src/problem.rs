//! Problem model: the multiple-choice knapsack ILP of paper §5.2.
//!
//! ```text
//! minimize   Σᵢ Σⱼ q_{i,j} · x_{i,j}            (total quality loss)
//! s.t.       Σᵢ Σⱼ e_{i,j} · x_{i,j} ≥ E_t      (efficiency target)
//!            Σⱼ x_{i,j} = 1  ∀ i                (one option per layer)
//!            x_{i,j} ∈ {0, 1}
//! ```

use serde::{Deserialize, Serialize};

/// One selectable option for one group (one precision assignment for one
/// layer): `quality` is its quality loss `q_{i,j}`, `efficiency` its
/// efficiency saving `e_{i,j}`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Choice {
    /// Quality loss incurred by picking this option (lower is better).
    pub quality: f64,
    /// Efficiency saving contributed by this option (higher is faster).
    pub efficiency: f64,
}

impl Choice {
    /// Convenience constructor.
    pub fn new(quality: f64, efficiency: f64) -> Self {
        Choice {
            quality,
            efficiency,
        }
    }
}

/// A multiple-choice knapsack instance: `groups[i]` lists layer `i`'s
/// options; exactly one must be picked per group, and the picked
/// efficiencies must sum to at least `target`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct McKnapsack {
    /// Option lists, one per decision group (layer).
    pub groups: Vec<Vec<Choice>>,
    /// Efficiency target `E_t` (same unit as the choices' efficiencies).
    pub target: f64,
}

impl McKnapsack {
    /// Creates an instance.
    pub fn new(groups: Vec<Vec<Choice>>, target: f64) -> Self {
        McKnapsack { groups, target }
    }

    /// Validates the instance: no empty groups, all values finite.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.groups.is_empty() {
            return Err("no decision groups".into());
        }
        for (i, g) in self.groups.iter().enumerate() {
            if g.is_empty() {
                return Err(format!("group {i} has no options"));
            }
            for (j, c) in g.iter().enumerate() {
                if !c.quality.is_finite() || !c.efficiency.is_finite() {
                    return Err(format!("group {i} option {j} has non-finite values"));
                }
            }
        }
        if !self.target.is_finite() {
            return Err("target must be finite".into());
        }
        Ok(())
    }

    /// The maximum achievable efficiency (each group at its max).
    pub fn max_efficiency(&self) -> f64 {
        self.groups
            .iter()
            .map(|g| {
                g.iter()
                    .map(|c| c.efficiency)
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .sum()
    }

    /// Whether some assignment can satisfy the target.
    pub fn is_feasible(&self) -> bool {
        self.max_efficiency() >= self.target - 1e-12
    }

    /// Objective and efficiency of a full assignment (`picks[i]` = option of
    /// group `i`).
    ///
    /// # Panics
    ///
    /// Panics if `picks` has the wrong length or an index is out of range.
    pub fn evaluate(&self, picks: &[usize]) -> (f64, f64) {
        assert_eq!(picks.len(), self.groups.len(), "pick count mismatch");
        let mut q = 0.0;
        let mut e = 0.0;
        for (g, &j) in self.groups.iter().zip(picks) {
            q += g[j].quality;
            e += g[j].efficiency;
        }
        (q, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> McKnapsack {
        McKnapsack::new(
            vec![
                vec![Choice::new(0.0, 0.0), Choice::new(1.0, 1.0)],
                vec![Choice::new(0.0, 0.0), Choice::new(3.0, 1.0)],
            ],
            1.0,
        )
    }

    #[test]
    fn validation_catches_problems() {
        assert!(simple().validate().is_ok());
        assert!(McKnapsack::new(vec![], 0.0).validate().is_err());
        assert!(McKnapsack::new(vec![vec![]], 0.0).validate().is_err());
        assert!(McKnapsack::new(vec![vec![Choice::new(f64::NAN, 0.0)]], 0.0)
            .validate()
            .is_err());
    }

    #[test]
    fn feasibility() {
        let p = simple();
        assert!(p.is_feasible());
        assert_eq!(p.max_efficiency(), 2.0);
        let mut hard = p.clone();
        hard.target = 3.0;
        assert!(!hard.is_feasible());
    }

    #[test]
    fn evaluate_sums_choices() {
        let p = simple();
        assert_eq!(p.evaluate(&[1, 0]), (1.0, 1.0));
        assert_eq!(p.evaluate(&[1, 1]), (4.0, 2.0));
    }
}
