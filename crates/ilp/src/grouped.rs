//! Pipeline-stage-aware ILP (paper §5.3).
//!
//! Pipeline parallelism bottlenecks on the slowest stage, so the paper
//! replaces the single efficiency constraint with a per-stage constraint
//! (its Eq. 5): every stage must contribute at least `E_t / K`. Because the
//! objective is separable and the constraints touch disjoint variable sets,
//! the grouped problem decomposes exactly into one multiple-choice knapsack
//! per stage.

use crate::problem::McKnapsack;
use crate::solve::{solve, Solution, SolveError, SolveOptions};

/// Solves the grouped (pipeline-stage-aware) variant: `stage_of[i]` assigns
/// group `i` to a pipeline stage, and stage `k` must reach
/// `stage_targets[k]` efficiency.
///
/// Returns a combined [`Solution`] whose `picks` cover all groups in the
/// original order; `nodes` sums over stages and `proven_optimal` requires
/// every stage to be proven.
///
/// # Errors
///
/// [`SolveError::Invalid`] if `stage_of` is inconsistent with the instance or
/// the stage count; [`SolveError::Infeasible`] if any stage cannot meet its
/// target.
pub fn solve_grouped(
    problem: &McKnapsack,
    stage_of: &[usize],
    stage_targets: &[f64],
    opts: &SolveOptions,
) -> Result<Solution, SolveError> {
    problem.validate().map_err(SolveError::Invalid)?;
    if stage_of.len() != problem.groups.len() {
        return Err(SolveError::Invalid(format!(
            "stage_of has {} entries for {} groups",
            stage_of.len(),
            problem.groups.len()
        )));
    }
    let n_stages = stage_targets.len();
    if let Some(&bad) = stage_of.iter().find(|&&s| s >= n_stages) {
        return Err(SolveError::Invalid(format!(
            "stage index {bad} out of range ({n_stages} stages)"
        )));
    }

    let mut picks = vec![0usize; problem.groups.len()];
    let mut objective = 0.0;
    let mut efficiency = 0.0;
    let mut nodes = 0;
    let mut proven = true;
    for (k, &target) in stage_targets.iter().enumerate() {
        let members: Vec<usize> = (0..problem.groups.len())
            .filter(|&i| stage_of[i] == k)
            .collect();
        if members.is_empty() {
            if target > 1e-12 {
                return Err(SolveError::Infeasible);
            }
            continue;
        }
        let sub = McKnapsack::new(
            members.iter().map(|&i| problem.groups[i].clone()).collect(),
            target,
        );
        let sol = solve(&sub, opts)?;
        for (local, &global) in members.iter().enumerate() {
            picks[global] = sol.picks[local];
        }
        objective += sol.objective;
        efficiency += sol.efficiency;
        nodes += sol.nodes;
        proven &= sol.proven_optimal;
    }
    Ok(Solution {
        picks,
        objective,
        efficiency,
        nodes,
        proven_optimal: proven,
    })
}

/// Evenly partitions `n_groups` decision groups into `n_stages` contiguous
/// stages (the paper's layout: consecutive layers share a stage). Returns
/// `stage_of`.
///
/// # Panics
///
/// Panics if `n_stages` is zero.
pub fn contiguous_stages(n_groups: usize, n_stages: usize) -> Vec<usize> {
    assert!(n_stages > 0, "need at least one stage");
    let per = n_groups.div_ceil(n_stages);
    (0..n_groups).map(|i| (i / per).min(n_stages - 1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Choice;

    fn two_stage_problem() -> (McKnapsack, Vec<usize>) {
        // 4 groups, stages [0,0,1,1]. Each group: base (q=0,e=0) and an
        // upgrade with differing costs.
        let groups = vec![
            vec![Choice::new(0.0, 0.0), Choice::new(1.0, 1.0)],
            vec![Choice::new(0.0, 0.0), Choice::new(9.0, 1.0)],
            vec![Choice::new(0.0, 0.0), Choice::new(2.0, 1.0)],
            vec![Choice::new(0.0, 0.0), Choice::new(8.0, 1.0)],
        ];
        (McKnapsack::new(groups, 0.0), vec![0, 0, 1, 1])
    }

    #[test]
    fn per_stage_constraints_are_enforced() {
        let (p, stages) = two_stage_problem();
        // Global constraint of 2.0 could be met by upgrading groups 0 and 2
        // (cost 3). Per-stage targets of 1.0 each force the same here — but
        // with targets [2.0, 0.0] the solver must upgrade BOTH stage-0 groups.
        let s = solve_grouped(&p, &stages, &[2.0, 0.0], &SolveOptions::default()).unwrap();
        assert_eq!(s.picks, vec![1, 1, 0, 0]);
        assert_eq!(s.objective, 10.0);
        assert!(s.proven_optimal);
    }

    #[test]
    fn balanced_targets_pick_cheapest_per_stage() {
        let (p, stages) = two_stage_problem();
        let s = solve_grouped(&p, &stages, &[1.0, 1.0], &SolveOptions::default()).unwrap();
        assert_eq!(s.picks, vec![1, 0, 1, 0]);
        assert_eq!(s.objective, 3.0);
    }

    #[test]
    fn infeasible_stage_detected() {
        let (p, stages) = two_stage_problem();
        let err = solve_grouped(&p, &stages, &[3.0, 0.0], &SolveOptions::default());
        assert_eq!(err, Err(SolveError::Infeasible));
    }

    #[test]
    fn stage_validation() {
        let (p, _) = two_stage_problem();
        assert!(matches!(
            solve_grouped(&p, &[0, 0, 0], &[0.0], &SolveOptions::default()),
            Err(SolveError::Invalid(_))
        ));
        assert!(matches!(
            solve_grouped(&p, &[0, 0, 0, 5], &[0.0, 0.0], &SolveOptions::default()),
            Err(SolveError::Invalid(_))
        ));
    }

    #[test]
    fn contiguous_partition_is_balanced() {
        let stages = contiguous_stages(22 * 7, 4);
        assert_eq!(stages.len(), 154);
        assert_eq!(stages[0], 0);
        assert_eq!(stages[153], 3);
        // Stage sizes differ by at most the remainder chunk.
        let mut counts = [0usize; 4];
        for &s in &stages {
            counts[s] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 154);
        // Contiguous chunking: first stages get ceil(154/4)=39, last gets the
        // remainder (37).
        assert!(counts.iter().all(|&c| (37..=39).contains(&c)), "{counts:?}");
    }

    #[test]
    fn grouped_equals_global_when_single_stage() {
        let (mut p, _) = two_stage_problem();
        p.target = 2.0;
        let global = crate::solve::solve(&p, &SolveOptions::default()).unwrap();
        let grouped = solve_grouped(&p, &[0, 0, 0, 0], &[2.0], &SolveOptions::default()).unwrap();
        assert_eq!(global.objective, grouped.objective);
    }
}
