//! Property tests for the time-balanced water-filling stage targets.

use proptest::prelude::*;
use snip_ilp::{imbalance_fraction, stage_times, time_balanced_targets};

fn stage_flops_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.05f64..10.0, 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn targets_sum_to_budget_and_respect_caps(
        flops in stage_flops_strategy(),
        e_t in 0.0f64..=1.0,
    ) {
        let targets = time_balanced_targets(&flops, e_t).unwrap();
        let total: f64 = flops.iter().sum();
        let got: f64 = targets.iter().sum();
        prop_assert!((got - e_t * total).abs() < 1e-6 * total.max(1.0),
            "Σtargets {got} vs budget {}", e_t * total);
        for (k, (&t, &c)) in targets.iter().zip(&flops).enumerate() {
            prop_assert!(t >= -1e-9, "stage {k} negative target {t}");
            prop_assert!(t <= c + 1e-9, "stage {k} target {t} above capacity {c}");
        }
    }

    #[test]
    fn unclipped_stages_share_one_time(
        flops in stage_flops_strategy(),
        e_t in 0.05f64..=0.95,
    ) {
        let targets = time_balanced_targets(&flops, e_t).unwrap();
        let times = stage_times(&flops, &targets);
        // All stages that are strictly inside (0, cap) must sit at the same
        // water level T*.
        let interior: Vec<f64> = targets
            .iter()
            .zip(&flops)
            .zip(&times)
            .filter(|((&t, &c), _)| t > 1e-7 && t < c - 1e-7)
            .map(|((_, _), &time)| time)
            .collect();
        for w in interior.windows(2) {
            prop_assert!((w[0] - w[1]).abs() < 1e-6, "interior times differ: {interior:?}");
        }
        // Clipped-at-zero stages are *faster* than the water level at FP8
        // already; clipped-at-cap stages are slower even at all-FP4.
        if let Some(&level) = interior.first() {
            for ((&t, &c), &time) in targets.iter().zip(&flops).zip(&times) {
                if t <= 1e-7 {
                    prop_assert!(time <= level + 1e-6);
                } else if t >= c - 1e-7 {
                    prop_assert!(time + 1e-6 >= level);
                }
            }
        }
    }

    #[test]
    fn balancing_never_increases_imbalance_vs_relative(
        flops in stage_flops_strategy(),
        e_t in 0.0f64..=1.0,
    ) {
        let balanced = time_balanced_targets(&flops, e_t).unwrap();
        // Eq. 5-style relative targets give every stage e_t · C_k.
        let relative: Vec<f64> = flops.iter().map(|&c| e_t * c).collect();
        let imb_bal = imbalance_fraction(&stage_times(&flops, &balanced));
        let imb_rel = imbalance_fraction(&stage_times(&flops, &relative));
        prop_assert!(imb_bal <= imb_rel + 1e-9,
            "balanced {imb_bal} > relative {imb_rel} for {flops:?} @ {e_t}");
    }

    #[test]
    fn budget_monotonicity_of_bottleneck_time(
        flops in stage_flops_strategy(),
        e_lo in 0.0f64..=0.5,
        delta in 0.0f64..=0.5,
    ) {
        // More FP4 budget can only speed up (or hold) the slowest stage.
        let e_hi = e_lo + delta;
        let t_lo = stage_times(&flops, &time_balanced_targets(&flops, e_lo).unwrap());
        let t_hi = stage_times(&flops, &time_balanced_targets(&flops, e_hi).unwrap());
        let max_lo = t_lo.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let max_hi = t_hi.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(max_hi <= max_lo + 1e-9, "{max_hi} > {max_lo}");
    }
}
