//! # snip-data
//!
//! Synthetic pretraining corpora for the SNIP reproduction.
//!
//! The paper trains on web-scale corpora (SlimPajama, RedPajama); this crate
//! substitutes a seeded generative language with Zipfian unigrams, Markov
//! topic structure and copy/induction spans (see [`synthetic`] for the
//! rationale), plus [`stream::BatchStream`] to feed reproducible batches to
//! the trainer.
//!
//! # Example
//!
//! ```
//! use snip_data::{synthetic::{LanguageConfig, SyntheticLanguage}, stream::BatchStream};
//!
//! let lang = SyntheticLanguage::new(LanguageConfig::default(), 42);
//! let mut stream = BatchStream::new(lang, 0, 4, 32);
//! let batch = stream.next_batch();
//! assert_eq!(batch.num_tokens(), 4 * 32);
//! ```

pub mod stream;
pub mod synthetic;

pub use stream::BatchStream;
pub use synthetic::{LanguageConfig, SyntheticLanguage};
