//! Synthetic pretraining language.
//!
//! The paper pretrains on SlimPajama / StarcoderData / RedPajama — hundreds
//! of billions of web tokens that are unavailable here, so we substitute a
//! seeded generative language with the statistical properties that matter to
//! a transformer LM (DESIGN.md §1):
//!
//! * **Zipfian unigram statistics** — each hidden topic state emits from a
//!   power-law distribution over its own vocabulary slice, like word
//!   frequencies in natural text.
//! * **Markov topic structure** — a hidden-state chain gives medium-range
//!   predictability, so the model must use context to drop below unigram
//!   entropy.
//! * **Copy/induction spans** — segments that verbatim-replay earlier
//!   context, the pattern attention heads famously learn ("induction
//!   heads"); these make the attention layers (Q/K/V) genuinely load-bearing
//!   so SNIP's per-layer sensitivities are meaningful.

use serde::{Deserialize, Serialize};
use snip_tensor::rng::Rng;

/// Configuration of the synthetic language.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LanguageConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Number of hidden topic states.
    pub n_states: usize,
    /// Zipf exponent of each state's emission distribution.
    pub zipf_s: f64,
    /// Per-token probability of opening a copy span.
    pub copy_prob: f64,
    /// Length of each copy span.
    pub copy_len: usize,
    /// How far back the copy span reads.
    pub copy_offset: usize,
}

impl Default for LanguageConfig {
    fn default() -> Self {
        LanguageConfig {
            vocab: 96,
            n_states: 8,
            zipf_s: 1.1,
            copy_prob: 0.05,
            copy_len: 6,
            copy_offset: 12,
        }
    }
}

/// A seeded synthetic language model (the data-generating process).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SyntheticLanguage {
    cfg: LanguageConfig,
    /// `transitions[s]` = unnormalized next-state weights.
    transitions: Vec<Vec<f64>>,
    /// `emissions[s]` = unnormalized token weights for state `s`.
    emissions: Vec<Vec<f64>>,
}

impl SyntheticLanguage {
    /// Builds the language's transition and emission tables from a seed.
    ///
    /// # Panics
    ///
    /// Panics if the config has a zero vocab or zero states.
    pub fn new(cfg: LanguageConfig, seed: u64) -> Self {
        assert!(cfg.vocab > 0 && cfg.n_states > 0, "empty language");
        let mut rng = Rng::seed_from(seed ^ 0x5EED_DA7A);
        // Sparse-ish transitions: every state strongly prefers 3 successors.
        let mut transitions = Vec::with_capacity(cfg.n_states);
        for _ in 0..cfg.n_states {
            let mut row = vec![0.05f64; cfg.n_states];
            for _ in 0..3 {
                row[rng.below(cfg.n_states)] += 1.0;
            }
            transitions.push(row);
        }
        // A single global Zipf skeleton (so the aggregate unigram statistics
        // stay skewed like natural text), with per-state "topic tokens"
        // boosted so the hidden state is identifiable from context.
        let mut order: Vec<usize> = (0..cfg.vocab).collect();
        rng.shuffle(&mut order);
        let mut global = vec![0.0f64; cfg.vocab];
        for (rank, &tok) in order.iter().enumerate() {
            global[tok] = 1.0 / ((rank + 1) as f64).powf(cfg.zipf_s.max(1.2));
        }
        let topics_per_state = (cfg.vocab / 12).max(2);
        let mut emissions = Vec::with_capacity(cfg.n_states);
        for _ in 0..cfg.n_states {
            let mut weights = global.clone();
            for _ in 0..topics_per_state {
                let tok = rng.below(cfg.vocab);
                weights[tok] += 0.25; // strong state-specific preference
            }
            emissions.push(weights);
        }
        SyntheticLanguage {
            cfg,
            transitions,
            emissions,
        }
    }

    /// The language configuration.
    pub fn config(&self) -> &LanguageConfig {
        &self.cfg
    }

    /// Generates `len` tokens, consuming randomness from `rng`.
    pub fn generate(&self, len: usize, rng: &mut Rng) -> Vec<u32> {
        let mut out = Vec::with_capacity(len);
        let mut state = rng.below(self.cfg.n_states);
        let mut copy_remaining = 0usize;
        while out.len() < len {
            if copy_remaining > 0 && out.len() >= self.cfg.copy_offset {
                let tok = out[out.len() - self.cfg.copy_offset];
                out.push(tok);
                copy_remaining -= 1;
                continue;
            }
            if self.cfg.copy_prob > 0.0
                && out.len() >= self.cfg.copy_offset
                && rng.next_f64() < self.cfg.copy_prob
            {
                copy_remaining = self.cfg.copy_len;
                continue;
            }
            let tok = rng.sample_weighted(&self.emissions[state]) as u32;
            out.push(tok);
            state = rng.sample_weighted(&self.transitions[state]);
        }
        out
    }

    /// Unigram entropy (bits) of the stationary token distribution, estimated
    /// by sampling — a sanity tool for experiments.
    pub fn estimate_unigram_entropy(&self, samples: usize, rng: &mut Rng) -> f64 {
        let mut counts = vec![0usize; self.cfg.vocab];
        for &t in &self.generate(samples, rng) {
            counts[t as usize] += 1;
        }
        let total: usize = counts.iter().sum();
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total as f64;
                -p * p.log2()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lang() -> SyntheticLanguage {
        SyntheticLanguage::new(LanguageConfig::default(), 42)
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let l = lang();
        let a = l.generate(256, &mut Rng::seed_from(1));
        let b = l.generate(256, &mut Rng::seed_from(1));
        let c = l.generate(256, &mut Rng::seed_from(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tokens_are_in_vocabulary() {
        let l = lang();
        let toks = l.generate(2000, &mut Rng::seed_from(3));
        assert_eq!(toks.len(), 2000);
        assert!(toks.iter().all(|&t| (t as usize) < l.config().vocab));
    }

    #[test]
    fn distribution_is_skewed_not_uniform() {
        let l = lang();
        let toks = l.generate(20_000, &mut Rng::seed_from(4));
        let mut counts = vec![0usize; l.config().vocab];
        for &t in &toks {
            counts[t as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // Zipfian: top token much more frequent than the median token.
        assert!(counts[0] > 8 * counts[l.config().vocab / 2].max(1));
    }

    #[test]
    fn copy_spans_create_repetitions() {
        let cfg = LanguageConfig {
            copy_prob: 0.2,
            ..Default::default()
        };
        let l = SyntheticLanguage::new(cfg.clone(), 9);
        let toks = l.generate(4000, &mut Rng::seed_from(5));
        // Count positions where token repeats the one copy_offset back.
        let hits = (cfg.copy_offset..toks.len())
            .filter(|&i| toks[i] == toks[i - cfg.copy_offset])
            .count();
        let rate = hits as f64 / (toks.len() - cfg.copy_offset) as f64;
        // With 20% span starts of length 6 the repeat rate must far exceed
        // the chance rate (~1/8 due to zipf collisions).
        assert!(rate > 0.3, "repeat rate = {rate}");
    }

    #[test]
    fn entropy_below_uniform() {
        let l = lang();
        let h = l.estimate_unigram_entropy(30_000, &mut Rng::seed_from(6));
        let uniform = (l.config().vocab as f64).log2();
        assert!(h < uniform - 1.0, "H = {h}, uniform = {uniform}");
        assert!(h > 1.0, "H = {h} suspiciously low");
    }

    #[test]
    #[should_panic(expected = "empty language")]
    fn empty_config_rejected() {
        let _ = SyntheticLanguage::new(
            LanguageConfig {
                vocab: 0,
                ..Default::default()
            },
            0,
        );
    }
}
