//! Token streams and batch iterators.

use crate::synthetic::SyntheticLanguage;
use serde::{Deserialize, Serialize};
use snip_nn::batch::Batch;
use snip_tensor::rng::Rng;

/// An infinite, seeded stream of training batches drawn from a synthetic
/// language. Mirrors the "sample ~1% of the original dataset" protocol of the
/// paper (§6.1): every run sees a fresh but reproducible slice of data.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BatchStream {
    language: SyntheticLanguage,
    rng: Rng,
    batch_size: usize,
    seq_len: usize,
}

impl BatchStream {
    /// Creates a stream with its own RNG stream.
    pub fn new(language: SyntheticLanguage, seed: u64, batch_size: usize, seq_len: usize) -> Self {
        assert!(batch_size > 0 && seq_len > 0, "degenerate batch shape");
        BatchStream {
            language,
            rng: Rng::seed_from(seed ^ 0xBA7C_57EA),
            batch_size,
            seq_len,
        }
    }

    /// The underlying language.
    pub fn language(&self) -> &SyntheticLanguage {
        &self.language
    }

    /// Batch shape `(batch_size, seq_len)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.batch_size, self.seq_len)
    }

    /// Draws the next training batch.
    pub fn next_batch(&mut self) -> Batch {
        let sequences: Vec<Vec<u32>> = (0..self.batch_size)
            .map(|_| self.language.generate(self.seq_len + 1, &mut self.rng))
            .collect();
        Batch::from_sequences(&sequences, self.seq_len)
    }

    /// Draws a held-out batch without advancing the training stream (a fixed
    /// validation batch derived from `seed`).
    pub fn validation_batch(&self, seed: u64) -> Batch {
        let mut rng = Rng::seed_from(seed ^ 0x7E57_DA7A);
        let sequences: Vec<Vec<u32>> = (0..self.batch_size)
            .map(|_| self.language.generate(self.seq_len + 1, &mut rng))
            .collect();
        Batch::from_sequences(&sequences, self.seq_len)
    }
}

impl Iterator for BatchStream {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        Some(self.next_batch())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::LanguageConfig;

    fn stream() -> BatchStream {
        let lang = SyntheticLanguage::new(LanguageConfig::default(), 1);
        BatchStream::new(lang, 2, 4, 16)
    }

    #[test]
    fn batches_have_requested_shape() {
        let mut s = stream();
        let b = s.next_batch();
        assert_eq!(b.batch_size(), 4);
        assert_eq!(b.seq_len(), 16);
        assert_eq!(b.num_tokens(), 64);
    }

    #[test]
    fn stream_is_reproducible_and_advances() {
        let mut s1 = stream();
        let mut s2 = stream();
        let a1 = s1.next_batch();
        let a2 = s2.next_batch();
        assert_eq!(a1, a2);
        let b1 = s1.next_batch();
        assert_ne!(a1, b1, "stream must advance");
    }

    #[test]
    fn validation_batch_is_stable() {
        let mut s = stream();
        let v1 = s.validation_batch(7);
        let _ = s.next_batch();
        let v2 = s.validation_batch(7);
        assert_eq!(
            v1, v2,
            "validation batch must not depend on stream position"
        );
        assert_ne!(v1, s.validation_batch(8));
    }

    #[test]
    fn iterator_interface() {
        let s = stream();
        let batches: Vec<Batch> = s.take(3).collect();
        assert_eq!(batches.len(), 3);
        assert_ne!(batches[0], batches[1]);
    }

    #[test]
    fn targets_are_shifted_inputs() {
        let mut s = stream();
        let b = s.next_batch();
        // Within each row, target[t] == token[t+1].
        for row in 0..b.batch_size() {
            for t in 0..b.seq_len() - 1 {
                assert_eq!(
                    b.targets()[row * b.seq_len() + t],
                    b.tokens()[row * b.seq_len() + t + 1]
                );
            }
        }
    }
}
