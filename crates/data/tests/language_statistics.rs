//! Statistical properties of the synthetic pretraining language — the
//! properties the experiments lean on (DESIGN.md §1): a learnable Zipfian
//! head, long-range copy structure that makes mature models sharply
//! predictable, and full determinism from seeds.

use snip_data::{BatchStream, LanguageConfig, SyntheticLanguage};
use snip_tensor::rng::Rng;

fn counts(tokens: &[u32], vocab: usize) -> Vec<usize> {
    let mut c = vec![0usize; vocab];
    for &t in tokens {
        c[t as usize] += 1;
    }
    c
}

#[test]
fn generation_is_deterministic_per_seed() {
    let lang = SyntheticLanguage::new(LanguageConfig::default(), 7);
    let a = lang.generate(512, &mut Rng::seed_from(1));
    let b = lang.generate(512, &mut Rng::seed_from(1));
    let c = lang.generate(512, &mut Rng::seed_from(2));
    assert_eq!(a, b);
    assert_ne!(a, c);
}

#[test]
fn language_seed_changes_the_distribution_not_just_the_stream() {
    // Different language seeds permute the per-state emission tables, so
    // even with the same generation RNG the text differs.
    let l1 = SyntheticLanguage::new(LanguageConfig::default(), 1);
    let l2 = SyntheticLanguage::new(LanguageConfig::default(), 2);
    assert_ne!(
        l1.generate(256, &mut Rng::seed_from(3)),
        l2.generate(256, &mut Rng::seed_from(3))
    );
}

#[test]
fn tokens_stay_in_vocabulary() {
    for vocab in [16usize, 64, 96] {
        let lang = SyntheticLanguage::new(
            LanguageConfig {
                vocab,
                ..Default::default()
            },
            5,
        );
        let tokens = lang.generate(2000, &mut Rng::seed_from(4));
        assert!(tokens.iter().all(|&t| (t as usize) < vocab));
    }
}

#[test]
fn zipf_head_dominates_tail() {
    // With a Zipfian emission law, the most frequent decile of the
    // vocabulary should carry several times the mass of the least frequent
    // decile.
    let cfg = LanguageConfig {
        copy_prob: 0.0, // isolate the emission law
        ..Default::default()
    };
    let lang = SyntheticLanguage::new(cfg.clone(), 11);
    let tokens = lang.generate(40_000, &mut Rng::seed_from(6));
    let mut c = counts(&tokens, cfg.vocab);
    c.sort_unstable_by(|a, b| b.cmp(a));
    let decile = cfg.vocab / 10;
    let head: usize = c[..decile].iter().sum();
    let tail: usize = c[cfg.vocab - decile..].iter().sum();
    assert!(
        head > 5 * tail.max(1),
        "head {head} should dominate tail {tail}"
    );
}

#[test]
fn steeper_zipf_concentrates_more_mass() {
    let gen = |s: f64| {
        let cfg = LanguageConfig {
            zipf_s: s,
            copy_prob: 0.0,
            ..Default::default()
        };
        let lang = SyntheticLanguage::new(cfg.clone(), 13);
        let tokens = lang.generate(30_000, &mut Rng::seed_from(8));
        let mut c = counts(&tokens, cfg.vocab);
        c.sort_unstable_by(|a, b| b.cmp(a));
        c[..8].iter().sum::<usize>() as f64 / tokens.len() as f64
    };
    assert!(gen(1.6) > gen(0.8), "steeper exponent, heavier head");
}

#[test]
fn copy_structure_creates_long_range_matches() {
    // With copy spans, the rate of exact matches at the copy offset should
    // far exceed the no-copy baseline (this is precisely the predictability
    // the calibration notes say the experiments need).
    let match_rate = |copy_prob: f64| {
        let cfg = LanguageConfig {
            copy_prob,
            copy_len: 10,
            copy_offset: 11,
            ..Default::default()
        };
        let lang = SyntheticLanguage::new(cfg.clone(), 17);
        let tokens = lang.generate(20_000, &mut Rng::seed_from(9));
        let off = cfg.copy_offset;
        let hits = tokens.windows(off + 1).filter(|w| w[off] == w[0]).count();
        hits as f64 / (tokens.len() - off) as f64
    };
    let with_copy = match_rate(0.2);
    let without = match_rate(0.0);
    assert!(
        with_copy > 2.0 * without,
        "copy structure invisible: {with_copy:.4} vs baseline {without:.4}"
    );
}

#[test]
fn unigram_entropy_estimate_is_sane() {
    let cfg = LanguageConfig::default();
    let vocab = cfg.vocab as f64;
    let lang = SyntheticLanguage::new(cfg, 19);
    let h = lang.estimate_unigram_entropy(20_000, &mut Rng::seed_from(10));
    // Entropy is reported in bits: between 1 (extremely peaked) and
    // log₂(vocab) (uniform).
    assert!(h > 1.0 && h < vocab.log2() + 1e-9, "entropy {h} bits");
}

#[test]
fn batch_stream_shapes_and_determinism() {
    let lang = SyntheticLanguage::new(LanguageConfig::default(), 23);
    let mut s1 = BatchStream::new(lang.clone(), 31, 3, 16);
    let mut s2 = BatchStream::new(lang.clone(), 31, 3, 16);
    assert_eq!(s1.shape(), (3, 16));
    let (a, b) = (s1.next_batch(), s2.next_batch());
    assert_eq!(a.tokens(), b.tokens());
    // Streams advance: consecutive batches differ.
    let c = s1.next_batch();
    assert_ne!(a.tokens(), c.tokens());
    // Validation batches are stable and disjoint from the training stream
    // RNG (same seed → same batch, regardless of stream position).
    let v1 = s1.validation_batch(99);
    let v2 = s2.validation_batch(99);
    assert_eq!(v1.tokens(), v2.tokens());
}
